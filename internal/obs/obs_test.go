package obs

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// TestHistogramBucketBoundaries: bucket i spans (2^(i-1) µs, 2^i µs];
// boundary values land in the lower bucket, one past lands in the next.
func TestHistogramBucketBoundaries(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want int
	}{
		{0, 0},
		{time.Nanosecond, 0},
		{time.Microsecond, 0},
		{time.Microsecond + time.Nanosecond, 0}, // sub-µs remainder truncates away
		{2 * time.Microsecond, 1},
		{2*time.Microsecond + time.Microsecond, 2}, // 3µs -> (2µs, 4µs]
		{4 * time.Microsecond, 2},
		{5 * time.Microsecond, 3},
		{8 * time.Microsecond, 3},
		{1024 * time.Microsecond, 10},
		{1025 * time.Microsecond, 11},
		{time.Hour, NumHistogramBuckets - 1}, // overflow clamps to last
	}
	for _, c := range cases {
		if got := bucketIndex(c.d); got != c.want {
			t.Errorf("bucketIndex(%v) = %d, want %d", c.d, got, c.want)
		}
	}
	// Bounds are strictly increasing powers of two.
	for i := 1; i < NumHistogramBuckets; i++ {
		if BucketBound(i) != 2*BucketBound(i-1) {
			t.Errorf("BucketBound(%d) = %v, want 2*%v", i, BucketBound(i), BucketBound(i-1))
		}
	}
	if BucketBound(0) != time.Microsecond {
		t.Errorf("BucketBound(0) = %v, want 1µs", BucketBound(0))
	}
}

func TestHistogramRecordAndQuantiles(t *testing.T) {
	h := NewHistogram()
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile should be 0")
	}
	// 90 fast observations and 10 slow ones: p50 stays in the fast
	// bucket, p99 lands in the slow one.
	for i := 0; i < 90; i++ {
		h.Record(3 * time.Microsecond) // bucket (2µs, 4µs]
	}
	for i := 0; i < 10; i++ {
		h.Record(900 * time.Microsecond) // bucket (512µs, 1024µs]
	}
	if h.Count() != 100 {
		t.Fatalf("Count = %d, want 100", h.Count())
	}
	wantSum := 90*3*time.Microsecond + 10*900*time.Microsecond
	if h.Sum() != wantSum {
		t.Errorf("Sum = %v, want %v", h.Sum(), wantSum)
	}
	if p50 := h.Quantile(0.50); p50 < 2*time.Microsecond || p50 > 4*time.Microsecond {
		t.Errorf("p50 = %v, want within (2µs, 4µs]", p50)
	}
	if p99 := h.Quantile(0.99); p99 < 512*time.Microsecond || p99 > 1024*time.Microsecond {
		t.Errorf("p99 = %v, want within (512µs, 1024µs]", p99)
	}
	if h.Quantile(0) > h.Quantile(0.5) || h.Quantile(0.5) > h.Quantile(1) {
		t.Error("quantiles not monotone in p")
	}
	// Negative durations count as zero, not panic or underflow.
	h.Record(-time.Second)
	if h.Count() != 101 {
		t.Error("negative duration not recorded as zero")
	}
}

// TestConcurrentInstruments exercises counters, gauges and histograms
// from many goroutines; run under -race this validates the lock-free
// recording paths.
func TestConcurrentInstruments(t *testing.T) {
	r := NewRegistry()
	const workers, perWorker = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared")
			g := r.Gauge("inflight")
			h := r.Histogram("lat")
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Record(time.Duration(i) * time.Microsecond)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != workers*perWorker {
		t.Errorf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Gauge("inflight").Value(); got != 0 {
		t.Errorf("gauge = %d, want 0", got)
	}
	if got := r.Histogram("lat").Count(); got != workers*perWorker {
		t.Errorf("histogram count = %d, want %d", got, workers*perWorker)
	}
}

// TestTraceNopZeroAlloc: the disabled path — a nil *Trace, also when held
// behind the Observer interface — performs no allocations.
func TestTraceNopZeroAlloc(t *testing.T) {
	var tr *Trace
	var o Observer = tr
	allocs := testing.AllocsPerRun(1000, func() {
		tr.ObservePhase(PhaseFilter, time.Millisecond)
		tr.ObserveVerify(3, 17, time.Millisecond, true)
		tr.ObserveCache(true)
		o.ObservePhase(PhaseVerify, time.Millisecond)
		o.ObserveVerify(4, 9, time.Millisecond, false)
		o.ObserveCache(false)
	})
	if allocs != 0 {
		t.Errorf("nil-trace path allocates %.1f per run, want 0", allocs)
	}
	if snap := tr.Snapshot(); len(snap.Phases) != 0 || len(snap.Verifications) != 0 {
		t.Error("nil trace snapshot not empty")
	}
}

func TestTraceRecords(t *testing.T) {
	tr := NewTrace()
	tr.ObserveCache(false)
	tr.ObservePhase(PhaseFilter, 5*time.Millisecond)
	tr.ObserveVerify(2, 100, 3*time.Millisecond, true)
	tr.ObserveVerify(7, 40, time.Millisecond, false)
	tr.ObservePhase(PhaseVerify, 4*time.Millisecond)

	s := tr.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(s.Phases))
	}
	if s.PhaseTotal(PhaseFilter) != 5*time.Millisecond {
		t.Errorf("filter total = %v", s.PhaseTotal(PhaseFilter))
	}
	if s.PhaseTotal(PhaseVerify) != 4*time.Millisecond {
		t.Errorf("verify total = %v", s.PhaseTotal(PhaseVerify))
	}
	if len(s.Verifications) != 2 {
		t.Fatalf("verifications = %d, want 2", len(s.Verifications))
	}
	ev := s.Verifications[0]
	if ev.Graph != 2 || ev.Steps != 100 || ev.DurationUS != 3000 || !ev.Found {
		t.Errorf("event = %+v", ev)
	}
	if s.CacheMisses != 1 || s.CacheHits != 0 {
		t.Errorf("cache events = %d/%d", s.CacheHits, s.CacheMisses)
	}
}

func TestTraceEventCap(t *testing.T) {
	tr := NewTraceN(4)
	for i := 0; i < 10; i++ {
		tr.ObserveVerify(i, 1, time.Microsecond, false)
	}
	s := tr.Snapshot()
	if len(s.Verifications) != 4 {
		t.Errorf("kept %d events, want 4", len(s.Verifications))
	}
	if s.VerificationsDropped != 6 {
		t.Errorf("dropped = %d, want 6", s.VerificationsDropped)
	}
}

func TestRegistrySnapshotJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("queries_total").Add(42)
	r.Gauge("inflight").Set(3)
	h := r.Histogram("latency")
	h.Record(10 * time.Microsecond)
	h.Record(20 * time.Microsecond)

	data, err := json.Marshal(r.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Counters["queries_total"] != 42 {
		t.Errorf("counter = %d", back.Counters["queries_total"])
	}
	if back.Gauges["inflight"] != 3 {
		t.Errorf("gauge = %d", back.Gauges["inflight"])
	}
	hs := back.Histograms["latency"]
	if hs.Count != 2 || len(hs.Buckets) == 0 {
		t.Errorf("histogram snapshot = %+v", hs)
	}

	counters, gauges, hists := r.Names()
	if len(counters) != 1 || len(gauges) != 1 || len(hists) != 1 {
		t.Errorf("Names() = %v %v %v", counters, gauges, hists)
	}
}

// recordingObserver counts events for Tee tests.
type recordingObserver struct {
	mu                             sync.Mutex
	phases, verifies, hits, panics int
}

func (r *recordingObserver) ObservePhase(string, time.Duration) {
	r.mu.Lock()
	r.phases++
	r.mu.Unlock()
}

func (r *recordingObserver) ObserveVerify(int, uint64, time.Duration, bool) {
	r.mu.Lock()
	r.verifies++
	r.mu.Unlock()
}

func (r *recordingObserver) ObserveCache(bool) {
	r.mu.Lock()
	r.hits++
	r.mu.Unlock()
}

func (r *recordingObserver) ObserveWorkers(int) {}

func (r *recordingObserver) ObserveFingerprint(uint64) {}

func (r *recordingObserver) ObservePanic(int) {
	r.mu.Lock()
	r.panics++
	r.mu.Unlock()
}

func TestTee(t *testing.T) {
	if Tee() != nil {
		t.Error("Tee() should be nil")
	}
	if Tee(nil, nil) != nil {
		t.Error("Tee(nil, nil) should be nil")
	}
	a := &recordingObserver{}
	if got := Tee(nil, a); got != Observer(a) {
		t.Error("single observer should be returned unwrapped")
	}
	b := &recordingObserver{}
	o := Tee(a, b)
	o.ObservePhase(PhaseFilter, time.Millisecond)
	o.ObserveVerify(1, 1, time.Millisecond, true)
	o.ObserveCache(true)
	for i, r := range []*recordingObserver{a, b} {
		if r.phases != 1 || r.verifies != 1 || r.hits != 1 {
			t.Errorf("observer %d: %d/%d/%d", i, r.phases, r.verifies, r.hits)
		}
	}
}
