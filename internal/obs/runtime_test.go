package obs

import (
	"runtime"
	"testing"

	rm "runtime/metrics"
)

func TestReadRuntimeHealth(t *testing.T) {
	// Force at least one GC so the pause histogram has samples.
	runtime.GC()
	h := ReadRuntimeHealth()
	if h.Goroutines <= 0 {
		t.Fatalf("Goroutines = %d, want > 0", h.Goroutines)
	}
	if h.HeapInUseBytes <= 0 {
		t.Fatalf("HeapInUseBytes = %d, want > 0", h.HeapInUseBytes)
	}
	if h.GCPauseP99 <= 0 {
		t.Fatalf("GCPauseP99 = %v, want > 0 after a forced GC", h.GCPauseP99)
	}
	if h.GCPauseP99 > 10e9 {
		t.Fatalf("GCPauseP99 = %v, absurdly large (Inf bucket leak?)", h.GCPauseP99)
	}
}

func TestHistogramQuantileSeconds(t *testing.T) {
	if histogramQuantileSeconds(nil, 0.99) != 0 {
		t.Fatal("nil histogram should read 0")
	}
	empty := &rm.Float64Histogram{Counts: []uint64{0, 0}, Buckets: []float64{0, 1, 2}}
	if histogramQuantileSeconds(empty, 0.99) != 0 {
		t.Fatal("empty histogram should read 0")
	}
	// 90 samples in [0,1ms), 10 in [1ms,2ms): p50 in the first bucket,
	// p99 in the second.
	h := &rm.Float64Histogram{
		Counts:  []uint64{90, 10},
		Buckets: []float64{0, 0.001, 0.002},
	}
	if got := histogramQuantileSeconds(h, 0.5); got.Milliseconds() != 1 {
		t.Fatalf("p50 = %v, want 1ms (bucket upper bound)", got)
	}
	if got := histogramQuantileSeconds(h, 0.99); got.Milliseconds() != 2 {
		t.Fatalf("p99 = %v, want 2ms", got)
	}
}
