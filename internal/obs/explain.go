package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"text/tabwriter"
	"time"
)

// Explain is a per-query introspection report populated by the filtering
// and index internals as a query runs — the EXPLAIN-ANALYZE counterpart of
// the Trace's timing spans. Where the Trace says *when* time was spent,
// the Explain says *what the pruning machinery did*: per-query-vertex
// candidate counts after each filter stage, index probe statistics (trie
// nodes visited, intersection sizes, fingerprint survivors), refinement
// rounds, pseudo-isomorphism rejections and the chosen matching order.
//
// All methods are safe on a nil *Explain — they become no-ops that
// allocate nothing — so engines thread a possibly-nil pointer through
// QueryOptions unconditionally. Non-nil Explains are safe for concurrent
// use: parallel engines record from worker goroutines.
type Explain struct {
	mu     sync.Mutex
	engine string

	stages  []*stageAgg
	stageIx map[string]int

	refineGraphs int
	refineTotal  int64
	refineMax    int
	rejections   int64

	prefilterGraphs int
	prefilterPruned int

	domainBitsVerts  int64
	domainChainVerts int64

	enumCalls uint64
	enumJumps uint64
	enumRedos uint64
	enumProbe uint64
	enumMerge uint64

	probes        []IndexProbe
	probesDropped int

	order       []OrderStep
	ordersSeen  int
	orderVaried bool
}

// NewExplain returns an empty report.
func NewExplain() *Explain { return &Explain{} }

// maxExplainProbes bounds retained index probes; vcFV engines emit none,
// IFV/IvcFV engines emit one per query, so the bound only guards misuse.
const maxExplainProbes = 16

// Filter stage names recorded by the matching layer. A stage is one
// pruning pass of a filter; counts are |Φ(u)| per query vertex after the
// pass, recorded once per data graph reaching the stage.
const (
	// StageCFLLDF is CFL's label-and-degree qualification — the raw
	// candidate pool the top-down generation draws from.
	StageCFLLDF = "cfl.ldf"
	// StageCFLTopDown is CFL's top-down generation along the BFS tree with
	// backward pruning over processed neighbors (the CPI construction's
	// first pass; generation and backward pruning are fused per vertex).
	StageCFLTopDown = "cfl.topdown"
	// StageCFLBottomUp is CFL's bottom-up refinement pass.
	StageCFLBottomUp = "cfl.bottomup"
	// StageGraphQLProfile is GraphQL's neighborhood-profile candidate
	// generation.
	StageGraphQLProfile = "graphql.profile"
	// StageGraphQLRefine is GraphQL's pseudo subgraph isomorphism
	// refinement (semi-perfect bipartite matching rounds).
	StageGraphQLRefine = "graphql.refine"
)

// stageAgg aggregates one named stage across the data graphs that reached
// it.
type stageAgg struct {
	name     string
	graphs   int
	pruned   int
	sum      []int64
	nDataSum int64 // Σ |V(G)| over observed graphs: the density denominator
}

// ObserveStage records per-query-vertex candidate counts after one filter
// stage on one data graph. A zero count means the graph was pruned at (or
// before) this stage.
func (e *Explain) ObserveStage(stage string, counts []int) {
	e.ObserveStageDense(stage, counts, 0)
}

// ObserveStageDense is ObserveStage with the data graph's vertex count,
// letting the snapshot report the stage's mean domain density (candidate
// count as a fraction of |V(G)|). nData 0 records counts only.
func (e *Explain) ObserveStageDense(stage string, counts []int, nData int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stageIx == nil {
		e.stageIx = map[string]int{}
	}
	ix, ok := e.stageIx[stage]
	if !ok {
		ix = len(e.stages)
		e.stageIx[stage] = ix
		e.stages = append(e.stages, &stageAgg{name: stage})
	}
	agg := e.stages[ix]
	if len(agg.sum) < len(counts) {
		grown := make([]int64, len(counts))
		copy(grown, agg.sum)
		agg.sum = grown
	}
	agg.graphs++
	agg.nDataSum += int64(nData)
	pruned := false
	for u, c := range counts {
		agg.sum[u] += int64(c)
		if c == 0 {
			pruned = true
		}
	}
	if pruned || len(counts) == 0 {
		agg.pruned++
	}
}

// ObservePrefilter records one data graph passing through the label-pair
// prefilter; pruned reports whether the graph was rejected before any
// per-vertex filtering.
func (e *Explain) ObservePrefilter(pruned bool) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.prefilterGraphs++
	if pruned {
		e.prefilterPruned++
	}
	e.mu.Unlock()
}

// ObserveDomainRep records, for one data graph, how many query vertices
// the top-down generation handled on the packed bit-row path vs the
// sparse chain path — the representation switch's actual behavior.
func (e *Explain) ObserveDomainRep(bitsVerts, chainVerts int) {
	if e == nil || (bitsVerts == 0 && chainVerts == 0) {
		return
	}
	e.mu.Lock()
	e.domainBitsVerts += int64(bitsVerts)
	e.domainChainVerts += int64(chainVerts)
	e.mu.Unlock()
}

// ObserveEnumerate accumulates one enumeration's backtracking and
// intersection statistics: conflict-directed backjumps taken, dead-end
// backtracks analyzed, and intersections done by domain-row probing vs
// sorted merge.
func (e *Explain) ObserveEnumerate(jumps, redos, probe, merge uint64) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.enumCalls++
	e.enumJumps += jumps
	e.enumRedos += redos
	e.enumProbe += probe
	e.enumMerge += merge
	e.mu.Unlock()
}

// ObserveRefineRounds records the number of refinement rounds a filter
// executed on one data graph (GraphQL's bounded pseudo-isomorphism
// iteration).
func (e *Explain) ObserveRefineRounds(rounds int) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.refineGraphs++
	e.refineTotal += int64(rounds)
	if rounds > e.refineMax {
		e.refineMax = rounds
	}
	e.mu.Unlock()
}

// ObserveRejections adds n candidate vertices rejected by the pseudo
// subgraph isomorphism test (semi-perfect bipartite matching), batched per
// data graph.
func (e *Explain) ObserveRejections(n int64) {
	if e == nil || n == 0 {
		return
	}
	e.mu.Lock()
	e.rejections += n
	e.mu.Unlock()
}

// IndexProbe reports one index Filter call from the inside: how much of
// the structure the probe walked and how hard each feature pruned.
type IndexProbe struct {
	// Index names the probed structure ("Grapes", "GGSX", "CT-Index",
	// "result-cache", ...).
	Index string `json:"index"`
	// Features is the number of query features probed (path features for
	// the tries, enumerated tree/cycle features for CT-Index, cached
	// entries for the result cache).
	Features int `json:"features"`
	// NodesVisited counts trie/suffix-tree nodes traversed across all
	// feature lookups; 0 for fingerprint indexes.
	NodesVisited int64 `json:"nodes_visited,omitempty"`
	// IntersectionSizes is the candidate-set size after each successive
	// occurrence-list intersection, capped at maxIntersectionSizes — the
	// pruning trajectory of the probe.
	IntersectionSizes []int `json:"intersection_sizes,omitempty"`
	// FingerprintBits is the number of bits set in the query fingerprint
	// (CT-Index only).
	FingerprintBits int `json:"fingerprint_bits,omitempty"`
	// Survivors is |C'(q)|, the candidate count the probe returned.
	Survivors int `json:"survivors"`
	// DurationUS is the probe's wall-clock time.
	DurationUS int64 `json:"duration_us"`
}

// maxIntersectionSizes bounds the recorded pruning trajectory of one
// probe; Features still reports the full count.
const maxIntersectionSizes = 64

// ObserveIndexProbe records one index probe. Retention is bounded; excess
// probes are counted and dropped.
func (e *Explain) ObserveIndexProbe(p IndexProbe) {
	if e == nil {
		return
	}
	if len(p.IntersectionSizes) > maxIntersectionSizes {
		p.IntersectionSizes = p.IntersectionSizes[:maxIntersectionSizes]
	}
	e.mu.Lock()
	if len(e.probes) < maxExplainProbes {
		e.probes = append(e.probes, p)
	} else {
		e.probesDropped++
	}
	e.mu.Unlock()
}

// OrderStep is one position of a matching order: the query vertex and its
// candidate count at ordering time (its selectivity).
type OrderStep struct {
	Vertex     int `json:"vertex"`
	Candidates int `json:"candidates"`
}

// ObserveOrder records the matching order chosen for one candidate data
// graph. The first order is retained verbatim; later orders only bump the
// counter and mark whether any differed (orders are per data graph in the
// vcFV framework).
func (e *Explain) ObserveOrder(steps []OrderStep) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.ordersSeen++
	if e.order == nil {
		e.order = append([]OrderStep(nil), steps...)
	} else if !e.orderVaried && !sameOrder(e.order, steps) {
		e.orderVaried = true
	}
	e.mu.Unlock()
}

func sameOrder(a, b []OrderStep) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Vertex != b[i].Vertex {
			return false
		}
	}
	return true
}

// SetEngine records which engine produced the report. Wrapping engines
// (the result cache) overwrite the inner engine's name after delegating.
func (e *Explain) SetEngine(name string) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.engine = name
	e.mu.Unlock()
}

// StageStats is the snapshot of one filter stage.
type StageStats struct {
	Name string `json:"name"`
	// Graphs is the number of data graphs that reached the stage.
	Graphs int `json:"graphs"`
	// Pruned is the number of those graphs left with an empty candidate
	// set — filtered out at this stage.
	Pruned int `json:"pruned"`
	// SumPerVertex[u] sums |Φ(u)| after the stage across all graphs.
	SumPerVertex []int64 `json:"sum_per_vertex,omitempty"`
	// NDataSum sums |V(G)| over the observed graphs (0 when the stage was
	// recorded without density information).
	NDataSum int64 `json:"n_data_sum,omitempty"`
}

// MeanDensity returns the stage's aggregate domain density: total
// candidate count per query vertex as a fraction of total data vertices.
// Zero when no density information was recorded.
func (s StageStats) MeanDensity() float64 {
	if s.NDataSum == 0 || len(s.SumPerVertex) == 0 {
		return 0
	}
	var total int64
	for _, v := range s.SumPerVertex {
		total += v
	}
	return float64(total) / float64(len(s.SumPerVertex)) / float64(s.NDataSum)
}

// PrefilterStats summarizes the label-pair prefilter outcome.
type PrefilterStats struct {
	// Graphs is the number of data graphs checked.
	Graphs int `json:"graphs"`
	// Pruned is how many were rejected before any per-vertex filtering.
	Pruned int `json:"pruned"`
}

// DomainRepStats reports the representation switch's choices during
// top-down candidate generation, in query vertices handled per path.
type DomainRepStats struct {
	BitsVertices  int64 `json:"bits_vertices"`
	ChainVertices int64 `json:"chain_vertices"`
}

// EnumerateStats aggregates backtracking and intersection behavior across
// the query's enumerations.
type EnumerateStats struct {
	// Enumerations is the number of Enumerate calls observed.
	Enumerations uint64 `json:"enumerations"`
	// Jumps counts conflict-directed backjumps that skipped at least one
	// order position; Redos counts all analyzed dead-end backtracks.
	Jumps uint64 `json:"jumps"`
	Redos uint64 `json:"redos"`
	// ProbeIntersections and MergeIntersections count candidate-set ∩
	// neighborhood steps by chosen representation.
	ProbeIntersections uint64 `json:"probe_intersections"`
	MergeIntersections uint64 `json:"merge_intersections"`
}

// MeanPerVertex returns SumPerVertex averaged over Graphs (nil when the
// stage saw no graphs).
func (s StageStats) MeanPerVertex() []float64 {
	if s.Graphs == 0 {
		return nil
	}
	out := make([]float64, len(s.SumPerVertex))
	for i, v := range s.SumPerVertex {
		out[i] = float64(v) / float64(s.Graphs)
	}
	return out
}

// RefineStats summarizes the refinement-round distribution.
type RefineStats struct {
	Graphs int   `json:"graphs"`
	Total  int64 `json:"total_rounds"`
	Max    int   `json:"max_rounds"`
}

// ExplainSnapshot is the JSON-marshalable view of an Explain, inlined
// into the /query response under ?explain=1 and rendered by sqquery
// -explain.
type ExplainSnapshot struct {
	Engine string `json:"engine,omitempty"`
	// IndexProbes lists index Filter calls in emission order (IFV/IvcFV
	// engines and the result cache).
	IndexProbes        []IndexProbe `json:"index_probes,omitempty"`
	IndexProbesDropped int          `json:"index_probes_dropped,omitempty"`
	// Stages lists filter stages in first-emission order: the candidate
	// funnel of the vertex-connectivity filters.
	Stages []StageStats `json:"stages,omitempty"`
	// Prefilter summarizes the label-pair compatibility check that can
	// reject a data graph before any per-vertex filtering.
	Prefilter *PrefilterStats `json:"prefilter,omitempty"`
	// DomainRep reports the bit-row vs chain representation choices of the
	// top-down generation.
	DomainRep *DomainRepStats `json:"domain_rep,omitempty"`
	// Enumerate aggregates jump-redo backtracking and intersection
	// representation statistics across the query's enumerations.
	Enumerate *EnumerateStats `json:"enumerate,omitempty"`
	// RefineRounds summarizes GraphQL's pseudo-isomorphism iteration.
	RefineRounds *RefineStats `json:"refine_rounds,omitempty"`
	// SemiPerfectRejections counts candidate vertices rejected by the
	// semi-perfect bipartite matching test.
	SemiPerfectRejections int64 `json:"semi_perfect_rejections,omitempty"`
	// Order is the matching order of the first verified candidate graph
	// with per-vertex selectivity; OrderVaried reports whether later
	// graphs chose a different order.
	Order       []OrderStep `json:"order,omitempty"`
	OrdersSeen  int         `json:"orders_seen,omitempty"`
	OrderVaried bool        `json:"order_varied,omitempty"`
}

// Snapshot copies the report's current contents.
func (e *Explain) Snapshot() ExplainSnapshot {
	if e == nil {
		return ExplainSnapshot{}
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	s := ExplainSnapshot{
		Engine:                e.engine,
		IndexProbes:           append([]IndexProbe(nil), e.probes...),
		IndexProbesDropped:    e.probesDropped,
		SemiPerfectRejections: e.rejections,
		Order:                 append([]OrderStep(nil), e.order...),
		OrdersSeen:            e.ordersSeen,
		OrderVaried:           e.orderVaried,
	}
	for _, agg := range e.stages {
		s.Stages = append(s.Stages, StageStats{
			Name:         agg.name,
			Graphs:       agg.graphs,
			Pruned:       agg.pruned,
			SumPerVertex: append([]int64(nil), agg.sum...),
			NDataSum:     agg.nDataSum,
		})
	}
	if e.prefilterGraphs > 0 {
		s.Prefilter = &PrefilterStats{Graphs: e.prefilterGraphs, Pruned: e.prefilterPruned}
	}
	if e.domainBitsVerts > 0 || e.domainChainVerts > 0 {
		s.DomainRep = &DomainRepStats{BitsVertices: e.domainBitsVerts, ChainVertices: e.domainChainVerts}
	}
	if e.enumCalls > 0 {
		s.Enumerate = &EnumerateStats{
			Enumerations:       e.enumCalls,
			Jumps:              e.enumJumps,
			Redos:              e.enumRedos,
			ProbeIntersections: e.enumProbe,
			MergeIntersections: e.enumMerge,
		}
	}
	if e.refineGraphs > 0 {
		s.RefineRounds = &RefineStats{Graphs: e.refineGraphs, Total: e.refineTotal, Max: e.refineMax}
	}
	return s
}

// maxRenderedVertices bounds the per-vertex columns of the text table;
// wider queries elide the tail.
const maxRenderedVertices = 16

// WriteText renders the report as a human-readable plan+stats table — the
// sqquery -explain output.
func (s ExplainSnapshot) WriteText(w io.Writer) {
	fmt.Fprintf(w, "EXPLAIN engine=%s\n", s.Engine)
	if len(s.IndexProbes) > 0 {
		fmt.Fprintln(w, "  index probes:")
		for _, p := range s.IndexProbes {
			fmt.Fprintf(w, "    %-12s features=%d", p.Index, p.Features)
			if p.NodesVisited > 0 {
				fmt.Fprintf(w, " nodes=%d", p.NodesVisited)
			}
			if p.FingerprintBits > 0 {
				fmt.Fprintf(w, " fp_bits=%d", p.FingerprintBits)
			}
			fmt.Fprintf(w, " survivors=%d (%v)\n", p.Survivors,
				(time.Duration(p.DurationUS) * time.Microsecond).Round(time.Microsecond))
			if len(p.IntersectionSizes) > 0 {
				fmt.Fprintf(w, "                 intersections %v\n", p.IntersectionSizes)
			}
		}
		if s.IndexProbesDropped > 0 {
			fmt.Fprintf(w, "    (%d probes dropped)\n", s.IndexProbesDropped)
		}
	}
	if s.Prefilter != nil {
		fmt.Fprintf(w, "  prefilter (label-pair): %d/%d graphs pruned\n",
			s.Prefilter.Pruned, s.Prefilter.Graphs)
	}
	if len(s.Stages) > 0 {
		fmt.Fprintln(w, "  filter stages (mean |C(u)| over graphs reaching the stage):")
		tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
		nv := 0
		densities := false
		for _, st := range s.Stages {
			if len(st.SumPerVertex) > nv {
				nv = len(st.SumPerVertex)
			}
			if st.NDataSum > 0 {
				densities = true
			}
		}
		shown := nv
		if shown > maxRenderedVertices {
			shown = maxRenderedVertices
		}
		fmt.Fprintf(tw, "    stage\tgraphs\tpruned")
		if densities {
			fmt.Fprintf(tw, "\tdensity")
		}
		for u := 0; u < shown; u++ {
			fmt.Fprintf(tw, "\tu%d", u)
		}
		if shown < nv {
			fmt.Fprintf(tw, "\t…")
		}
		fmt.Fprintln(tw)
		for _, st := range s.Stages {
			fmt.Fprintf(tw, "    %s\t%d\t%d", st.Name, st.Graphs, st.Pruned)
			if densities {
				if st.NDataSum > 0 {
					fmt.Fprintf(tw, "\t%.4f", st.MeanDensity())
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			mean := st.MeanPerVertex()
			for u := 0; u < shown; u++ {
				if u < len(mean) {
					fmt.Fprintf(tw, "\t%.1f", mean[u])
				} else {
					fmt.Fprintf(tw, "\t-")
				}
			}
			if shown < nv {
				fmt.Fprintf(tw, "\t…")
			}
			fmt.Fprintln(tw)
		}
		tw.Flush()
	}
	if s.DomainRep != nil {
		fmt.Fprintf(w, "  domain representation: %d query vertices on bit rows, %d on chains\n",
			s.DomainRep.BitsVertices, s.DomainRep.ChainVertices)
	}
	if s.Enumerate != nil {
		fmt.Fprintf(w, "  enumeration: %d runs, %d backjumps of %d dead ends, %d probe / %d merge intersections\n",
			s.Enumerate.Enumerations, s.Enumerate.Jumps, s.Enumerate.Redos,
			s.Enumerate.ProbeIntersections, s.Enumerate.MergeIntersections)
	}
	if s.RefineRounds != nil {
		mean := float64(s.RefineRounds.Total) / float64(s.RefineRounds.Graphs)
		fmt.Fprintf(w, "  refinement: mean %.1f rounds, max %d over %d graphs",
			mean, s.RefineRounds.Max, s.RefineRounds.Graphs)
		if s.SemiPerfectRejections > 0 {
			fmt.Fprintf(w, "; %d semi-perfect rejections", s.SemiPerfectRejections)
		}
		fmt.Fprintln(w)
	} else if s.SemiPerfectRejections > 0 {
		fmt.Fprintf(w, "  semi-perfect rejections: %d\n", s.SemiPerfectRejections)
	}
	if len(s.Order) > 0 {
		fmt.Fprintf(w, "  matching order (first of %d graphs", s.OrdersSeen)
		if s.OrderVaried {
			fmt.Fprintf(w, ", varies per graph")
		}
		fmt.Fprintf(w, "):")
		shown := len(s.Order)
		if shown > maxRenderedVertices {
			shown = maxRenderedVertices
		}
		for _, st := range s.Order[:shown] {
			fmt.Fprintf(w, " u%d(%d)", st.Vertex, st.Candidates)
		}
		if shown < len(s.Order) {
			fmt.Fprintf(w, " …")
		}
		fmt.Fprintln(w)
	}
}

// SortProbesByDuration orders the snapshot's probes slowest first; used by
// CLI renderings that surface the most expensive probe.
func (s *ExplainSnapshot) SortProbesByDuration() {
	sort.SliceStable(s.IndexProbes, func(i, j int) bool {
		return s.IndexProbes[i].DurationUS > s.IndexProbes[j].DurationUS
	})
}
