package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// NumHistogramBuckets is the fixed bucket count of every Histogram.
// Bucket i spans (2^(i-1) µs, 2^i µs]; bucket 0 is (0, 1 µs] and the last
// bucket additionally absorbs everything beyond its bound (~36 minutes,
// comfortably past the paper's 10-minute query budget).
const NumHistogramBuckets = 32

// Histogram is a fixed-bucket, log-spaced latency histogram. Recording is
// lock-free (one atomic add on the bucket, the total count and the sum),
// so it is safe — and cheap — to call from parallel verification workers.
type Histogram struct {
	counts [NumHistogramBuckets]atomic.Uint64
	count  atomic.Uint64
	sum    atomic.Int64 // nanoseconds
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram { return &Histogram{} }

// bucketIndex maps a duration to its bucket: the smallest i with
// d <= 2^i µs, clamped to the last bucket.
func bucketIndex(d time.Duration) int {
	us := d.Microseconds()
	if us <= 1 {
		return 0
	}
	i := bits.Len64(uint64(us - 1)) // ceil(log2(us))
	if i >= NumHistogramBuckets {
		return NumHistogramBuckets - 1
	}
	return i
}

// BucketBound returns the inclusive upper bound of bucket i: 2^i µs. The
// last bucket also collects overflow beyond its bound.
func BucketBound(i int) time.Duration { return time.Microsecond << i }

// Record adds one observation. Negative durations count as zero.
func (h *Histogram) Record(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.counts[bucketIndex(d)].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Reset zeroes the histogram so its storage can be reused (the workload
// profile recycles per-shape histograms when a sketch slot is evicted).
// Concurrent Record calls may land on either side of the reset; callers
// that need a clean cut serialize externally, as the profile does.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(uint64(h.sum.Load()) / n)
}

// Quantile estimates the p-quantile (p in [0,1]) by linear interpolation
// within the containing bucket — the standard bucketed-histogram estimate,
// accurate to the bucket's resolution (a factor of 2 here). Returns 0 when
// the histogram is empty.
func (h *Histogram) Quantile(p float64) time.Duration {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Load a consistent-enough view: counts may advance during the walk;
	// quantiles are scrape-time estimates, not accounting.
	var counts [NumHistogramBuckets]uint64
	var total uint64
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
		total += counts[i]
	}
	if total == 0 {
		return 0
	}
	target := uint64(p * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum uint64
	for i, c := range counts {
		if c == 0 {
			continue
		}
		if cum+c >= target {
			lo := time.Duration(0)
			if i > 0 {
				lo = BucketBound(i - 1)
			}
			hi := BucketBound(i)
			frac := float64(target-cum) / float64(c)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		cum += c
	}
	return BucketBound(NumHistogramBuckets - 1)
}

// HistogramBucket is one non-empty bucket of a snapshot.
type HistogramBucket struct {
	// LeUS is the bucket's inclusive upper bound in microseconds.
	LeUS int64 `json:"le_us"`
	// Count is the number of observations in the bucket.
	Count uint64 `json:"count"`
}

// HistogramSnapshot is a point-in-time, JSON-marshalable view of a
// Histogram: count, sum/mean, the standard latency quantiles and the
// non-empty buckets.
type HistogramSnapshot struct {
	Count   uint64            `json:"count"`
	SumUS   int64             `json:"sum_us"`
	MeanUS  int64             `json:"mean_us"`
	P50US   int64             `json:"p50_us"`
	P90US   int64             `json:"p90_us"`
	P99US   int64             `json:"p99_us"`
	Buckets []HistogramBucket `json:"buckets,omitempty"`
}

// Snapshot captures the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Count:  h.Count(),
		SumUS:  h.Sum().Microseconds(),
		MeanUS: h.Mean().Microseconds(),
		P50US:  h.Quantile(0.50).Microseconds(),
		P90US:  h.Quantile(0.90).Microseconds(),
		P99US:  h.Quantile(0.99).Microseconds(),
	}
	for i := range h.counts {
		if c := h.counts[i].Load(); c > 0 {
			s.Buckets = append(s.Buckets, HistogramBucket{
				LeUS:  BucketBound(i).Microseconds(),
				Count: c,
			})
		}
	}
	return s
}
