package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestExplainNilIsSafe(t *testing.T) {
	var ex *Explain
	ex.ObserveStage(StageCFLLDF, []int{1, 2})
	ex.ObserveStageDense(StageCFLTopDown, []int{1}, 50)
	ex.ObservePrefilter(true)
	ex.ObserveDomainRep(1, 2)
	ex.ObserveEnumerate(1, 2, 3, 4)
	ex.ObserveRefineRounds(3)
	ex.ObserveRejections(7)
	ex.ObserveIndexProbe(IndexProbe{Index: "Grapes"})
	ex.ObserveOrder([]OrderStep{{Vertex: 0, Candidates: 1}})
	ex.SetEngine("CFQL")
	s := ex.Snapshot()
	if s.Engine != "" || len(s.Stages) != 0 || len(s.IndexProbes) != 0 {
		t.Fatalf("nil Explain snapshot not empty: %+v", s)
	}
}

// TestExplainNilAllocFree pins the acceptance criterion that the disabled
// hot path allocates nothing: every recording method on a nil *Explain must
// run without a single allocation.
func TestExplainNilAllocFree(t *testing.T) {
	var ex *Explain
	counts := []int{3, 1, 4}
	probe := IndexProbe{Index: "Grapes", Features: 5}
	steps := []OrderStep{{Vertex: 0, Candidates: 2}}
	allocs := testing.AllocsPerRun(200, func() {
		ex.ObserveStage(StageCFLTopDown, counts)
		ex.ObservePrefilter(false)
		ex.ObserveDomainRep(1, 1)
		ex.ObserveEnumerate(1, 1, 1, 1)
		ex.ObserveRefineRounds(2)
		ex.ObserveRejections(9)
		ex.ObserveIndexProbe(probe)
		ex.ObserveOrder(steps)
		ex.SetEngine("CFL")
	})
	if allocs != 0 {
		t.Fatalf("nil Explain allocated %.1f times per run, want 0", allocs)
	}
}

func TestExplainStageAggregation(t *testing.T) {
	ex := NewExplain()
	ex.ObserveStage(StageCFLLDF, []int{4, 6})
	ex.ObserveStage(StageCFLLDF, []int{2, 0}) // pruned: a zero count
	ex.ObserveStage(StageCFLTopDown, []int{3, 5})

	s := ex.Snapshot()
	if len(s.Stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(s.Stages))
	}
	ldf := s.Stages[0]
	if ldf.Name != StageCFLLDF {
		t.Fatalf("stage order: first stage is %q, want %q", ldf.Name, StageCFLLDF)
	}
	if ldf.Graphs != 2 || ldf.Pruned != 1 {
		t.Fatalf("ldf graphs=%d pruned=%d, want 2 and 1", ldf.Graphs, ldf.Pruned)
	}
	if ldf.SumPerVertex[0] != 6 || ldf.SumPerVertex[1] != 6 {
		t.Fatalf("ldf sums = %v, want [6 6]", ldf.SumPerVertex)
	}
	mean := ldf.MeanPerVertex()
	if mean[0] != 3 || mean[1] != 3 {
		t.Fatalf("ldf means = %v, want [3 3]", mean)
	}
}

func TestExplainDensityPrefilterDomainEnumerate(t *testing.T) {
	ex := NewExplain()
	ex.ObservePrefilter(true)
	ex.ObservePrefilter(false)
	ex.ObservePrefilter(false)
	ex.ObserveStageDense(StageCFLTopDown, []int{10, 30}, 100)
	ex.ObserveStageDense(StageCFLTopDown, []int{20, 20}, 100)
	ex.ObserveDomainRep(3, 1)
	ex.ObserveDomainRep(0, 0) // no-op: nothing generated
	ex.ObserveDomainRep(0, 2)
	ex.ObserveEnumerate(2, 5, 7, 11)
	ex.ObserveEnumerate(0, 0, 1, 0)

	s := ex.Snapshot()
	if s.Prefilter == nil || s.Prefilter.Graphs != 3 || s.Prefilter.Pruned != 1 {
		t.Fatalf("prefilter = %+v, want graphs=3 pruned=1", s.Prefilter)
	}
	st := s.Stages[0]
	if st.NDataSum != 200 {
		t.Fatalf("NDataSum = %d, want 200", st.NDataSum)
	}
	// (10+20+30+20)/2 vertices / 200 data vertices = 0.2
	if d := st.MeanDensity(); d != 0.2 {
		t.Fatalf("MeanDensity = %v, want 0.2", d)
	}
	if s.DomainRep == nil || s.DomainRep.BitsVertices != 3 || s.DomainRep.ChainVertices != 3 {
		t.Fatalf("domain rep = %+v, want bits=3 chains=3", s.DomainRep)
	}
	e := s.Enumerate
	if e == nil || e.Enumerations != 2 || e.Jumps != 2 || e.Redos != 5 ||
		e.ProbeIntersections != 8 || e.MergeIntersections != 11 {
		t.Fatalf("enumerate = %+v, want 2 runs jumps=2 redos=5 probe=8 merge=11", e)
	}

	// Counts-only stages report no density.
	ex2 := NewExplain()
	ex2.ObserveStage(StageCFLLDF, []int{5})
	if d := ex2.Snapshot().Stages[0].MeanDensity(); d != 0 {
		t.Fatalf("density without nData = %v, want 0", d)
	}
}

func TestExplainWriteTextNewSections(t *testing.T) {
	ex := NewExplain()
	ex.SetEngine("CFQL")
	ex.ObservePrefilter(true)
	ex.ObservePrefilter(false)
	ex.ObserveStageDense(StageCFLTopDown, []int{25, 75}, 1000)
	ex.ObserveDomainRep(4, 2)
	ex.ObserveEnumerate(3, 9, 100, 40)

	var b strings.Builder
	ex.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"prefilter (label-pair): 1/2 graphs pruned",
		"density",
		"0.0500", // (25+75)/2 / 1000
		"domain representation: 4 query vertices on bit rows, 2 on chains",
		"enumeration: 1 runs, 3 backjumps of 9 dead ends, 100 probe / 40 merge intersections",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

func TestExplainRefineAndRejections(t *testing.T) {
	ex := NewExplain()
	ex.ObserveRefineRounds(2)
	ex.ObserveRefineRounds(5)
	ex.ObserveRejections(10)
	ex.ObserveRejections(0) // no-op
	ex.ObserveRejections(3)

	s := ex.Snapshot()
	if s.RefineRounds == nil {
		t.Fatal("RefineRounds missing")
	}
	if s.RefineRounds.Graphs != 2 || s.RefineRounds.Total != 7 || s.RefineRounds.Max != 5 {
		t.Fatalf("refine = %+v, want graphs=2 total=7 max=5", s.RefineRounds)
	}
	if s.SemiPerfectRejections != 13 {
		t.Fatalf("rejections = %d, want 13", s.SemiPerfectRejections)
	}
}

func TestExplainProbeBounds(t *testing.T) {
	ex := NewExplain()
	long := make([]int, maxIntersectionSizes+10)
	for i := 0; i < maxExplainProbes+4; i++ {
		ex.ObserveIndexProbe(IndexProbe{Index: "Grapes", IntersectionSizes: long})
	}
	s := ex.Snapshot()
	if len(s.IndexProbes) != maxExplainProbes {
		t.Fatalf("kept %d probes, want %d", len(s.IndexProbes), maxExplainProbes)
	}
	if s.IndexProbesDropped != 4 {
		t.Fatalf("dropped = %d, want 4", s.IndexProbesDropped)
	}
	if n := len(s.IndexProbes[0].IntersectionSizes); n != maxIntersectionSizes {
		t.Fatalf("intersection sizes capped at %d, want %d", n, maxIntersectionSizes)
	}
}

func TestExplainOrderFirstKeptVariationFlagged(t *testing.T) {
	ex := NewExplain()
	ex.ObserveOrder([]OrderStep{{Vertex: 1, Candidates: 2}, {Vertex: 0, Candidates: 9}})
	ex.ObserveOrder([]OrderStep{{Vertex: 1, Candidates: 4}, {Vertex: 0, Candidates: 3}}) // same order
	s := ex.Snapshot()
	if s.OrdersSeen != 2 || s.OrderVaried {
		t.Fatalf("seen=%d varied=%v, want 2 and false", s.OrdersSeen, s.OrderVaried)
	}
	if s.Order[0].Vertex != 1 || s.Order[0].Candidates != 2 {
		t.Fatalf("first order not retained verbatim: %+v", s.Order)
	}

	ex.ObserveOrder([]OrderStep{{Vertex: 0, Candidates: 1}, {Vertex: 1, Candidates: 1}})
	s = ex.Snapshot()
	if !s.OrderVaried {
		t.Fatal("differing order not flagged")
	}
}

func TestExplainConcurrentRecording(t *testing.T) {
	ex := NewExplain()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				ex.ObserveStage(StageCFLTopDown, []int{1, 2, 3})
				ex.ObserveRefineRounds(1)
				ex.ObserveRejections(1)
				ex.ObserveOrder([]OrderStep{{Vertex: 0, Candidates: 1}})
			}
		}()
	}
	wg.Wait()
	s := ex.Snapshot()
	if s.Stages[0].Graphs != 800 {
		t.Fatalf("graphs = %d, want 800", s.Stages[0].Graphs)
	}
	if s.SemiPerfectRejections != 800 || s.OrdersSeen != 800 {
		t.Fatalf("rejections=%d orders=%d, want 800 each", s.SemiPerfectRejections, s.OrdersSeen)
	}
}

func TestExplainWriteText(t *testing.T) {
	ex := NewExplain()
	ex.SetEngine("CFQL")
	ex.ObserveStage(StageCFLLDF, []int{8, 12})
	ex.ObserveStage(StageCFLTopDown, []int{4, 6})
	ex.ObserveStage(StageCFLBottomUp, []int{3, 5})
	ex.ObserveIndexProbe(IndexProbe{Index: "Grapes", Features: 7, NodesVisited: 21, IntersectionSizes: []int{9, 4, 2}, Survivors: 2, DurationUS: 120})
	ex.ObserveOrder([]OrderStep{{Vertex: 1, Candidates: 3}, {Vertex: 0, Candidates: 5}})

	var b strings.Builder
	ex.Snapshot().WriteText(&b)
	out := b.String()
	for _, want := range []string{
		"EXPLAIN engine=CFQL",
		StageCFLLDF, StageCFLTopDown, StageCFLBottomUp,
		"Grapes", "nodes=21", "survivors=2",
		"intersections [9 4 2]",
		"u1(3)",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("WriteText output missing %q:\n%s", want, out)
		}
	}
}

// TestExplainWriteTextStageOrder pins the stage-table row ordering: stages
// render in first-emission order — the candidate pipeline's own order —
// regardless of how later graphs interleave their emissions.
func TestExplainWriteTextStageOrder(t *testing.T) {
	ex := NewExplain()
	ex.SetEngine("CFQL")
	// Graph 1 runs the full pipeline.
	ex.ObserveStage(StageCFLLDF, []int{8})
	ex.ObserveStage(StageCFLTopDown, []int{4})
	ex.ObserveStage(StageCFLBottomUp, []int{3})
	// Graph 2 is pruned after the top-down pass; graph 3 re-emits every
	// stage. Neither may reorder the table.
	ex.ObserveStage(StageCFLLDF, []int{9})
	ex.ObserveStage(StageCFLTopDown, []int{0})
	ex.ObserveStage(StageCFLBottomUp, []int{2})
	ex.ObserveStage(StageCFLTopDown, []int{1})
	ex.ObserveStage(StageCFLLDF, []int{7})

	var b strings.Builder
	ex.Snapshot().WriteText(&b)
	out := b.String()
	prev := -1
	for _, stage := range []string{StageCFLLDF, StageCFLTopDown, StageCFLBottomUp} {
		at := strings.Index(out, stage)
		if at < 0 {
			t.Fatalf("stage %q missing from table:\n%s", stage, out)
		}
		if at < prev {
			t.Fatalf("stage %q rendered out of pipeline order:\n%s", stage, out)
		}
		prev = at
	}
}
