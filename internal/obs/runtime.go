package obs

import (
	rm "runtime/metrics"
	"time"
)

// RuntimeHealth is a point-in-time view of Go runtime health — the
// process-level vitals (goroutine count, heap pressure, GC pauses) that
// were previously invisible without attaching pprof. Sampled at metrics
// scrape time via ReadRuntimeHealth; never on a query hot path.
type RuntimeHealth struct {
	// Goroutines is the current goroutine count — the leak canary: a
	// serving process's count should plateau, not climb.
	Goroutines int64
	// HeapInUseBytes is the byte size of live and not-yet-swept heap
	// objects (runtime/metrics /memory/classes/heap/objects:bytes).
	HeapInUseBytes int64
	// GCPauseP99 is the 99th-percentile stop-the-world GC pause over the
	// process lifetime.
	GCPauseP99 time.Duration
}

// runtimeSampleNames are the runtime/metrics keys ReadRuntimeHealth
// samples; all three have been stable since Go 1.16.
var runtimeSampleNames = []string{
	"/sched/goroutines:goroutines",
	"/memory/classes/heap/objects:bytes",
	"/gc/pauses:seconds",
}

// ReadRuntimeHealth samples the runtime. Unknown metrics (KindBad, e.g. a
// future runtime dropping a name) read as zero rather than failing: the
// health view degrades, the scrape endpoint keeps working.
func ReadRuntimeHealth() RuntimeHealth {
	samples := make([]rm.Sample, len(runtimeSampleNames))
	for i, name := range runtimeSampleNames {
		samples[i].Name = name
	}
	rm.Read(samples)
	var h RuntimeHealth
	if samples[0].Value.Kind() == rm.KindUint64 {
		h.Goroutines = int64(samples[0].Value.Uint64())
	}
	if samples[1].Value.Kind() == rm.KindUint64 {
		h.HeapInUseBytes = int64(samples[1].Value.Uint64())
	}
	if samples[2].Value.Kind() == rm.KindFloat64Histogram {
		h.GCPauseP99 = histogramQuantileSeconds(samples[2].Value.Float64Histogram(), 0.99)
	}
	return h
}

// histogramQuantileSeconds returns the q-quantile of a runtime/metrics
// Float64Histogram whose buckets are in seconds, as a Duration. The
// runtime histograms are cumulative over process lifetime; like
// Histogram.Quantile, the estimate is the upper bound of the bucket
// containing the quantile.
func histogramQuantileSeconds(h *rm.Float64Histogram, q float64) time.Duration {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, c := range h.Counts {
		seen += c
		if seen > rank {
			// Buckets[i+1] is the upper bound of Counts[i]; the last
			// bucket's bound may be +Inf, where the lower bound is the
			// best finite answer.
			ub := h.Buckets[i+1]
			if ub > 1e9 { // +Inf or absurd: fall back to the lower bound
				ub = h.Buckets[i]
			}
			return time.Duration(ub * float64(time.Second))
		}
	}
	return 0
}
