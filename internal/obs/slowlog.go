package obs

import (
	"sync"
	"time"
)

// SlowQuery is one retained slow-query record: the query's headline
// numbers plus the full Trace and Explain captured while it ran.
type SlowQuery struct {
	Time       time.Time `json:"time"`
	DurationUS int64     `json:"duration_us"`
	Engine     string    `json:"engine,omitempty"`
	// Query is a short shape description ("8v/10e"), not the graph itself.
	Query string `json:"query,omitempty"`
	// Fingerprint is the query's canonical shape hash (16 hex digits), the
	// join key against /debug/top and the wide-event export.
	Fingerprint string           `json:"fingerprint,omitempty"`
	Answers     int              `json:"answers"`
	Candidates  int              `json:"candidates"`
	TimedOut    bool             `json:"timed_out,omitempty"`
	Trace       *TraceSnapshot   `json:"trace,omitempty"`
	Explain     *ExplainSnapshot `json:"explain,omitempty"`
}

// SlowLog is a bounded ring buffer of the most recent queries whose
// latency met a threshold. It is always-on and cheap: queries under the
// threshold cost one lock round-trip, retained queries overwrite the
// oldest slot, and memory is bounded by capacity × (trace cap + explain
// size). All methods are safe on a nil *SlowLog and for concurrent use.
type SlowLog struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []SlowQuery
	next      int // slot the next retained query overwrites
	full      bool
	seen      int64
	kept      int64
}

// DefaultSlowLogSize is the ring capacity when none is given.
const DefaultSlowLogSize = 64

// NewSlowLog returns a ring of the given capacity (<= 0 selects
// DefaultSlowLogSize) retaining queries at or over threshold; a zero or
// negative threshold retains every query.
func NewSlowLog(capacity int, threshold time.Duration) *SlowLog {
	if capacity <= 0 {
		capacity = DefaultSlowLogSize
	}
	return &SlowLog{threshold: threshold, buf: make([]SlowQuery, capacity)}
}

// Threshold returns the retention threshold.
func (l *SlowLog) Threshold() time.Duration {
	if l == nil {
		return 0
	}
	return l.threshold
}

// Offer submits a completed query; it is retained iff its duration meets
// the threshold. Reports whether the query was kept.
func (l *SlowLog) Offer(q SlowQuery) bool {
	if l == nil {
		return false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seen++
	if time.Duration(q.DurationUS)*time.Microsecond < l.threshold {
		return false
	}
	l.kept++
	l.buf[l.next] = q
	l.next++
	if l.next == len(l.buf) {
		l.next = 0
		l.full = true
	}
	return true
}

// SlowLogSnapshot is the JSON body of /debug/slowlog.
type SlowLogSnapshot struct {
	ThresholdUS int64 `json:"threshold_us"`
	Capacity    int   `json:"capacity"`
	// Seen counts queries offered; Kept counts queries that met the
	// threshold (including ones since evicted from the ring).
	Seen int64 `json:"seen"`
	Kept int64 `json:"kept"`
	// Queries lists the retained slow queries, newest first.
	Queries []SlowQuery `json:"queries"`
}

// Snapshot copies the retained queries, newest first.
func (l *SlowLog) Snapshot() SlowLogSnapshot {
	if l == nil {
		return SlowLogSnapshot{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	s := SlowLogSnapshot{
		ThresholdUS: l.threshold.Microseconds(),
		Capacity:    len(l.buf),
		Seen:        l.seen,
		Kept:        l.kept,
		Queries:     make([]SlowQuery, 0, len(l.buf)),
	}
	n := l.next
	if l.full {
		n = len(l.buf)
	}
	for i := 0; i < n; i++ {
		// Walk backwards from the most recently written slot.
		ix := (l.next - 1 - i + len(l.buf)) % len(l.buf)
		s.Queries = append(s.Queries, l.buf[ix])
	}
	return s
}
