package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSlowLogNilIsSafe(t *testing.T) {
	var l *SlowLog
	if l.Offer(SlowQuery{DurationUS: 1e6}) {
		t.Fatal("nil SlowLog kept a query")
	}
	if l.Threshold() != 0 {
		t.Fatal("nil SlowLog threshold non-zero")
	}
	if s := l.Snapshot(); s.Seen != 0 || len(s.Queries) != 0 {
		t.Fatalf("nil SlowLog snapshot not empty: %+v", s)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	if l.Offer(SlowQuery{DurationUS: 9_000}) {
		t.Fatal("under-threshold query kept")
	}
	if !l.Offer(SlowQuery{DurationUS: 10_000}) {
		t.Fatal("at-threshold query dropped")
	}
	s := l.Snapshot()
	if s.Seen != 2 || s.Kept != 1 || len(s.Queries) != 1 {
		t.Fatalf("seen=%d kept=%d len=%d, want 2/1/1", s.Seen, s.Kept, len(s.Queries))
	}
	if s.ThresholdUS != 10_000 || s.Capacity != 4 {
		t.Fatalf("threshold_us=%d capacity=%d", s.ThresholdUS, s.Capacity)
	}
}

func TestSlowLogRingEvictsOldest(t *testing.T) {
	l := NewSlowLog(3, 0) // zero threshold retains everything
	for i := 1; i <= 5; i++ {
		l.Offer(SlowQuery{DurationUS: int64(i), Answers: i})
	}
	s := l.Snapshot()
	if s.Seen != 5 || s.Kept != 5 {
		t.Fatalf("seen=%d kept=%d, want 5/5", s.Seen, s.Kept)
	}
	if len(s.Queries) != 3 {
		t.Fatalf("retained %d, want capacity 3", len(s.Queries))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []int{5, 4, 3} {
		if s.Queries[i].Answers != want {
			t.Fatalf("queries[%d].Answers = %d, want %d", i, s.Queries[i].Answers, want)
		}
	}
}

func TestSlowLogRetainsTraceAndExplain(t *testing.T) {
	l := NewSlowLog(2, 0)
	tr := NewTrace()
	tr.ObservePhase(PhaseFilter, time.Millisecond)
	ex := NewExplain()
	ex.SetEngine("CFQL")
	ts := tr.Snapshot()
	es := ex.Snapshot()
	l.Offer(SlowQuery{DurationUS: 42, Engine: "CFQL", Trace: &ts, Explain: &es})

	s := l.Snapshot()
	q := s.Queries[0]
	if q.Trace == nil || len(q.Trace.Phases) == 0 {
		t.Fatalf("trace not retained: %+v", q.Trace)
	}
	if q.Explain == nil || q.Explain.Engine != "CFQL" {
		t.Fatalf("explain not retained: %+v", q.Explain)
	}
}

// TestSlowLogConcurrentEviction hammers the ring from many writers while
// readers snapshot it: the retained set must never exceed the capacity, the
// seen/kept counters must be exact, and every retained entry must be one
// that was actually offered. Run under -race this also exercises the
// locking around eviction.
func TestSlowLogConcurrentEviction(t *testing.T) {
	const (
		capacity = 8
		writers  = 16
		perW     = 200
	)
	l := NewSlowLog(capacity, time.Millisecond)

	var readers, writerWG sync.WaitGroup
	stop := make(chan struct{})
	// Readers snapshot concurrently with the writers; each snapshot must be
	// internally consistent even mid-eviction.
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				s := l.Snapshot()
				if len(s.Queries) > capacity {
					t.Errorf("snapshot retained %d > capacity %d", len(s.Queries), capacity)
					return
				}
				if s.Kept > s.Seen {
					t.Errorf("kept %d > seen %d", s.Kept, s.Seen)
					return
				}
				for _, q := range s.Queries {
					if q.DurationUS < 1000 {
						t.Errorf("retained under-threshold query: %+v", q)
						return
					}
				}
			}
		}()
	}
	for w := 0; w < writers; w++ {
		writerWG.Add(1)
		go func(w int) {
			defer writerWG.Done()
			for i := 0; i < perW; i++ {
				// Odd sequence numbers are under the 1ms threshold and must
				// never survive into the ring.
				dur := int64(1000 + w*perW + i)
				if i%2 == 1 {
					dur = int64(i) % 1000
				}
				kept := l.Offer(SlowQuery{DurationUS: dur, Answers: w*perW + i})
				if kept != (i%2 == 0) {
					t.Errorf("writer %d offer %d: kept=%v, want %v", w, i, kept, i%2 == 0)
					return
				}
			}
		}(w)
	}
	writerWG.Wait()
	close(stop)
	readers.Wait()

	s := l.Snapshot()
	if s.Seen != writers*perW {
		t.Fatalf("seen = %d, want %d", s.Seen, writers*perW)
	}
	if want := int64(writers * perW / 2); s.Kept != want {
		t.Fatalf("kept = %d, want %d", s.Kept, want)
	}
	if len(s.Queries) != capacity {
		t.Fatalf("retained %d, want full capacity %d", len(s.Queries), capacity)
	}
	seen := map[int]bool{}
	for _, q := range s.Queries {
		if q.DurationUS < 1000 {
			t.Fatalf("under-threshold query survived eviction: %+v", q)
		}
		if seen[q.Answers] {
			t.Fatalf("query %d retained twice", q.Answers)
		}
		seen[q.Answers] = true
	}
}
