package obs

import (
	"testing"
	"time"
)

func TestSlowLogNilIsSafe(t *testing.T) {
	var l *SlowLog
	if l.Offer(SlowQuery{DurationUS: 1e6}) {
		t.Fatal("nil SlowLog kept a query")
	}
	if l.Threshold() != 0 {
		t.Fatal("nil SlowLog threshold non-zero")
	}
	if s := l.Snapshot(); s.Seen != 0 || len(s.Queries) != 0 {
		t.Fatalf("nil SlowLog snapshot not empty: %+v", s)
	}
}

func TestSlowLogThreshold(t *testing.T) {
	l := NewSlowLog(4, 10*time.Millisecond)
	if l.Offer(SlowQuery{DurationUS: 9_000}) {
		t.Fatal("under-threshold query kept")
	}
	if !l.Offer(SlowQuery{DurationUS: 10_000}) {
		t.Fatal("at-threshold query dropped")
	}
	s := l.Snapshot()
	if s.Seen != 2 || s.Kept != 1 || len(s.Queries) != 1 {
		t.Fatalf("seen=%d kept=%d len=%d, want 2/1/1", s.Seen, s.Kept, len(s.Queries))
	}
	if s.ThresholdUS != 10_000 || s.Capacity != 4 {
		t.Fatalf("threshold_us=%d capacity=%d", s.ThresholdUS, s.Capacity)
	}
}

func TestSlowLogRingEvictsOldest(t *testing.T) {
	l := NewSlowLog(3, 0) // zero threshold retains everything
	for i := 1; i <= 5; i++ {
		l.Offer(SlowQuery{DurationUS: int64(i), Answers: i})
	}
	s := l.Snapshot()
	if s.Seen != 5 || s.Kept != 5 {
		t.Fatalf("seen=%d kept=%d, want 5/5", s.Seen, s.Kept)
	}
	if len(s.Queries) != 3 {
		t.Fatalf("retained %d, want capacity 3", len(s.Queries))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []int{5, 4, 3} {
		if s.Queries[i].Answers != want {
			t.Fatalf("queries[%d].Answers = %d, want %d", i, s.Queries[i].Answers, want)
		}
	}
}

func TestSlowLogRetainsTraceAndExplain(t *testing.T) {
	l := NewSlowLog(2, 0)
	tr := NewTrace()
	tr.ObservePhase(PhaseFilter, time.Millisecond)
	ex := NewExplain()
	ex.SetEngine("CFQL")
	ts := tr.Snapshot()
	es := ex.Snapshot()
	l.Offer(SlowQuery{DurationUS: 42, Engine: "CFQL", Trace: &ts, Explain: &es})

	s := l.Snapshot()
	q := s.Queries[0]
	if q.Trace == nil || len(q.Trace.Phases) == 0 {
		t.Fatalf("trace not retained: %+v", q.Trace)
	}
	if q.Explain == nil || q.Explain.Engine != "CFQL" {
		t.Fatalf("explain not retained: %+v", q.Explain)
	}
}
