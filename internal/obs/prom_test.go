package obs

import (
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// promSampleLine matches one exposition-format sample: metric name, an
// optional label set, a space, and a value.
var promSampleLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? -?[0-9][0-9eE.+-]*$`)

func promFixture() Snapshot {
	r := NewRegistry()
	r.Counter("queries_total/CFQL").Add(41)
	r.Counter("queries_total/vcGrapes").Add(3)
	r.Counter("queries_rejected_total").Add(2)
	r.Gauge("queries_inflight").Set(1)
	h := r.Histogram("query_latency/CFQL")
	for _, d := range []time.Duration{50 * time.Microsecond, 3 * time.Millisecond, 90 * time.Millisecond} {
		h.Record(d)
	}
	return r.Snapshot()
}

// TestWritePrometheusFormatSanity is the acceptance gate: every line of the
// exposition must be a comment or a well-formed sample, every family must
// have exactly one # TYPE line, and histograms must have non-decreasing
// cumulative buckets ending at +Inf == _count.
func TestWritePrometheusFormatSanity(t *testing.T) {
	var b strings.Builder
	WritePrometheus(&b, promFixture(), "subgraphquery")
	out := b.String()
	if out == "" {
		t.Fatal("empty exposition")
	}

	types := map[string]string{}
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if _, dup := types[fields[2]]; dup {
				t.Fatalf("duplicate TYPE for %s", fields[2])
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		if !promSampleLine.MatchString(line) {
			t.Fatalf("malformed sample line: %q", line)
		}
		if !strings.HasPrefix(line, "subgraphquery_") {
			t.Fatalf("sample missing namespace: %q", line)
		}
	}

	for name, typ := range map[string]string{
		"subgraphquery_queries_total":         "counter",
		"subgraphquery_queries_inflight":      "gauge",
		"subgraphquery_query_latency_seconds": "histogram",
	} {
		if got := types[name]; got != typ {
			t.Fatalf("TYPE of %s = %q, want %q (all: %v)", name, got, typ, types)
		}
	}

	if !strings.Contains(out, `subgraphquery_queries_total{engine="CFQL"} 41`) {
		t.Fatalf("per-engine counter sample missing:\n%s", out)
	}

	// Histogram invariants: buckets cumulative, +Inf present, count matches.
	bucketRe := regexp.MustCompile(`subgraphquery_query_latency_seconds_bucket\{engine="CFQL",le="([^"]+)"\} (\d+)`)
	var last int64 = -1
	var inf int64 = -1
	for _, m := range bucketRe.FindAllStringSubmatch(out, -1) {
		v, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			t.Fatalf("bucket value %q: %v", m[2], err)
		}
		if v < last {
			t.Fatalf("bucket counts not cumulative at le=%s: %d after %d", m[1], v, last)
		}
		last = v
		if m[1] == "+Inf" {
			inf = v
		}
	}
	if inf != 3 {
		t.Fatalf("+Inf bucket = %d, want 3 (the sample count)", inf)
	}
	if !strings.Contains(out, `subgraphquery_query_latency_seconds_count{engine="CFQL"} 3`) {
		t.Fatalf("_count sample missing:\n%s", out)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"query_latency": "query_latency",
		"si-test.rate":  "si_test_rate",
		"9lives":        "_9lives",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplitMetricName(t *testing.T) {
	m, e := splitMetricName("queries_total/CFQL+cache")
	if m != "queries_total" || e != "CFQL+cache" {
		t.Fatalf("split = %q/%q", m, e)
	}
	m, e = splitMetricName("plain")
	if m != "plain" || e != "" {
		t.Fatalf("split = %q/%q", m, e)
	}
}

func TestEscapeLabelValue(t *testing.T) {
	if got := escapeLabelValue("a\"b\\c\nd"); got != `a\"b\\c\nd` {
		t.Fatalf("escape = %q", got)
	}
}
