package obs

import (
	"fmt"
	"sync"
	"time"
)

// DefaultMaxTraceEvents bounds the per-candidate verification events one
// Trace retains; further events are counted but dropped, so a query over a
// huge candidate set cannot balloon its own trace.
const DefaultMaxTraceEvents = 1024

// Trace records one query's telemetry: phase spans, per-candidate
// verification events and cache outcomes. It implements Observer.
//
// All methods are safe on a nil *Trace — they become no-ops that allocate
// nothing — so callers can unconditionally thread a possibly-nil trace
// through QueryOptions. Non-nil traces are safe for concurrent use.
type Trace struct {
	mu          sync.Mutex
	spans       []PhaseSpan
	events      []VerifyEvent
	dropped     int
	cacheHits   int
	cacheMisses int
	workers     int
	panics      int
	fingerprint uint64
	maxEvents   int
}

// NewTrace returns an empty trace retaining at most DefaultMaxTraceEvents
// verification events.
func NewTrace() *Trace { return &Trace{maxEvents: DefaultMaxTraceEvents} }

// NewTraceN returns an empty trace retaining at most n verification
// events (n <= 0 selects DefaultMaxTraceEvents).
func NewTraceN(n int) *Trace {
	if n <= 0 {
		n = DefaultMaxTraceEvents
	}
	return &Trace{maxEvents: n}
}

// PhaseSpan is one completed processing phase.
type PhaseSpan struct {
	Name       string `json:"name"`
	DurationUS int64  `json:"duration_us"`
}

// VerifyEvent is one subgraph isomorphism test against a candidate data
// graph — the unit the paper's per-SI-test metric (eq. 3) averages over.
type VerifyEvent struct {
	Graph      int    `json:"graph"`
	Steps      uint64 `json:"steps"`
	DurationUS int64  `json:"duration_us"`
	Found      bool   `json:"found"`
}

// ObservePhase implements Observer.
func (t *Trace) ObservePhase(name string, d time.Duration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.spans = append(t.spans, PhaseSpan{Name: name, DurationUS: d.Microseconds()})
	t.mu.Unlock()
}

// ObserveVerify implements Observer.
func (t *Trace) ObserveVerify(graphID int, steps uint64, d time.Duration, found bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) < t.maxEvents {
		t.events = append(t.events, VerifyEvent{
			Graph: graphID, Steps: steps, DurationUS: d.Microseconds(), Found: found,
		})
	} else {
		t.dropped++
	}
	t.mu.Unlock()
}

// ObserveCache implements Observer.
func (t *Trace) ObserveCache(hit bool) {
	if t == nil {
		return
	}
	t.mu.Lock()
	if hit {
		t.cacheHits++
	} else {
		t.cacheMisses++
	}
	t.mu.Unlock()
}

// ObserveWorkers implements Observer: it records the effective worker-pool
// size a parallel engine settled on after clamping.
func (t *Trace) ObserveWorkers(n int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.workers = n
	t.mu.Unlock()
}

// ObservePanic implements Observer: it counts panics recovered at the
// engine's resilience boundaries while this query executed.
func (t *Trace) ObservePanic(int) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.panics++
	t.mu.Unlock()
}

// ObserveFingerprint implements Observer: it stores the query's canonical
// shape hash so the trace can be joined against /debug/top and the
// wide-event export.
func (t *Trace) ObserveFingerprint(fp uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.fingerprint = fp
	t.mu.Unlock()
}

// TraceSnapshot is the JSON-marshalable view of a Trace, inlined into the
// /query response under ?trace=1.
type TraceSnapshot struct {
	// Phases lists completed phase spans in emission order. The "filter"
	// and "verify" spans sum to the query time; dotted names (e.g.
	// "filter.index") are sub-spans of their prefix and already included
	// in it.
	Phases []PhaseSpan `json:"phases"`
	// Verifications lists one event per candidate graph tested, capped at
	// the trace's event limit.
	Verifications []VerifyEvent `json:"verifications,omitempty"`
	// VerificationsTotal counts every verification observed, retained or
	// not; when it exceeds len(Verifications) the trace is truncated.
	VerificationsTotal int `json:"verifications_total"`
	// VerificationsDropped counts events beyond the cap. Always present so
	// a truncated trace cannot be misread as complete.
	VerificationsDropped int `json:"verifications_dropped"`
	// Truncated is the explicit flag for VerificationsDropped > 0.
	Truncated   bool `json:"truncated,omitempty"`
	CacheHits   int  `json:"cache_hits"`
	CacheMisses int  `json:"cache_misses"`
	// Workers is the effective worker-pool size of a parallel engine
	// (after clamping to GOMAXPROCS); 0 for sequential engines.
	Workers int `json:"workers,omitempty"`
	// Panics counts panics recovered at the engine's resilience boundaries
	// during this query; each corresponds to a skipped data graph or a
	// structured query error, never a crash.
	Panics int `json:"panics,omitempty"`
	// Fingerprint is the query's canonical shape hash (16 hex digits), the
	// join key against /debug/top and the wide-event export. Empty when the
	// engine did not fingerprint the query.
	Fingerprint string `json:"fingerprint,omitempty"`
}

// Snapshot copies the trace's current contents.
func (t *Trace) Snapshot() TraceSnapshot {
	if t == nil {
		return TraceSnapshot{}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	s := TraceSnapshot{
		Phases:               append([]PhaseSpan(nil), t.spans...),
		Verifications:        append([]VerifyEvent(nil), t.events...),
		VerificationsTotal:   len(t.events) + t.dropped,
		VerificationsDropped: t.dropped,
		Truncated:            t.dropped > 0,
		CacheHits:            t.cacheHits,
		CacheMisses:          t.cacheMisses,
		Workers:              t.workers,
		Panics:               t.panics,
	}
	if t.fingerprint != 0 {
		s.Fingerprint = fmt.Sprintf("%016x", t.fingerprint)
	}
	return s
}

// PhaseTotal sums the durations of spans with exactly the given name.
func (s TraceSnapshot) PhaseTotal(name string) time.Duration {
	var total int64
	for _, sp := range s.Phases {
		if sp.Name == name {
			total += sp.DurationUS
		}
	}
	return time.Duration(total) * time.Microsecond
}
