package inflight

import (
	"fmt"
	"io"
	"sort"
	"time"
)

// HandleSnapshot is a point-in-time, JSON-marshalable view of one live
// query — the row GET /debug/inflight returns and sqwatch renders.
type HandleSnapshot struct {
	// ID is the registry-unique handle id, the argument of
	// POST /debug/inflight/{id}/cancel.
	ID uint64 `json:"id"`
	// Fingerprint is the query's canonical shape hash, hex-encoded like
	// every other fingerprint on the wire.
	Fingerprint string `json:"fingerprint"`
	// Engine is the engine configuration running the query.
	Engine string `json:"engine"`
	// Verdict is the admission outcome recorded at registration.
	Verdict string `json:"verdict,omitempty"`
	// Phase is the current stage (filter, verify, filter+verify).
	Phase string `json:"phase"`
	// AgeMS is how long the query has been running.
	AgeMS int64 `json:"age_ms"`
	// GraphsDone and GraphsTotal are the per-data-graph progress; Total
	// is 0 until the engine classifies its work (e.g. before the index
	// probe returns the survivor count).
	GraphsDone  int64 `json:"graphs_done"`
	GraphsTotal int64 `json:"graphs_total"`
	// Candidates counts graphs that survived filtering so far.
	Candidates int64 `json:"candidates"`
	// Answers counts answers found so far.
	Answers int64 `json:"answers"`
	// Steps counts enumeration search-tree steps, flushed from the
	// matching layer at budget-checkpoint strides (lags true progress by
	// less than one stride).
	Steps uint64 `json:"steps"`
	// AuxBytes is the auxiliary-memory high-water mark so far.
	AuxBytes int64 `json:"aux_bytes"`
	// Cancelled reports a delivered (but not yet observed) cancellation.
	Cancelled bool `json:"cancelled,omitempty"`
	// Flagged reports that the stuck-query watchdog captured this query.
	Flagged bool `json:"flagged,omitempty"`
}

// Snapshot captures h at the given instant.
func (h *Handle) Snapshot(now time.Time) HandleSnapshot {
	if h == nil {
		return HandleSnapshot{}
	}
	return HandleSnapshot{
		ID:          h.id,
		Fingerprint: fmt.Sprintf("%016x", h.fingerprint),
		Engine:      h.engine,
		Verdict:     h.verdict,
		Phase:       Phase(h.phase.Load()).String(),
		AgeMS:       now.Sub(h.start).Milliseconds(),
		GraphsDone:  h.graphsDone.Load(),
		GraphsTotal: h.graphsTotal.Load(),
		Candidates:  h.candidates.Load(),
		Answers:     h.answers.Load(),
		Steps:       h.steps.Load(),
		AuxBytes:    h.auxBytes.Load(),
		Cancelled:   h.cancelled.Load(),
		Flagged:     h.flagged.Load(),
	}
}

// Snapshot returns every live query, oldest first (sorted by age
// descending) — the order an operator hunting a runaway query wants.
func (r *Registry) Snapshot() []HandleSnapshot {
	if r == nil {
		return nil
	}
	now := time.Now()
	out := make([]HandleSnapshot, 0, len(r.slots))
	for i := range r.slots {
		if h := r.slots[i].Load(); h != nil {
			out = append(out, h.Snapshot(now))
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].AgeMS != out[j].AgeMS {
			return out[i].AgeMS > out[j].AgeMS
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// visit calls fn for every live handle (watchdog scan).
func (r *Registry) visit(fn func(h *Handle)) {
	if r == nil {
		return
	}
	for i := range r.slots {
		if h := r.slots[i].Load(); h != nil {
			fn(h)
		}
	}
}

// WriteTable renders snapshots as the aligned text table behind
// GET /debug/inflight?format=text and the sqwatch display.
func WriteTable(w io.Writer, snaps []HandleSnapshot) {
	fmt.Fprintf(w, "%-5s %-16s %-14s %-13s %9s %13s %6s %5s %12s %10s %s\n",
		"ID", "FINGERPRINT", "ENGINE", "PHASE", "AGE", "GRAPHS", "CAND", "ANS", "STEPS", "AUX", "FLAGS")
	for _, s := range snaps {
		graphs := fmt.Sprintf("%d/%d", s.GraphsDone, s.GraphsTotal)
		if s.GraphsTotal == 0 {
			graphs = fmt.Sprintf("%d/?", s.GraphsDone)
		}
		flags := ""
		if s.Cancelled {
			flags += "C"
		}
		if s.Flagged {
			flags += "W"
		}
		fmt.Fprintf(w, "%-5d %-16s %-14s %-13s %9s %13s %6d %5d %12d %10s %s\n",
			s.ID, s.Fingerprint, s.Engine, s.Phase,
			(time.Duration(s.AgeMS) * time.Millisecond).Round(time.Millisecond),
			graphs, s.Candidates, s.Answers, s.Steps, fmtBytes(s.AuxBytes), flags)
	}
}

// fmtBytes renders a byte count with a binary unit suffix.
func fmtBytes(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
