//go:build !race

package inflight

// raceEnabled reports whether the race detector is compiled in.
// AllocsPerRun assertions are skipped under -race: the detector's
// instrumentation perturbs allocation behavior.
const raceEnabled = false
