package inflight

import (
	"runtime"
	"sync"
	"time"
)

// WatchdogConfig tunes the stuck-query watchdog.
type WatchdogConfig struct {
	// Interval is how often the registry is scanned (<= 0 selects
	// DefaultWatchdogInterval).
	Interval time.Duration
	// Multiple flags a query once its age exceeds Multiple × the rolling
	// p99 latency (<= 0 selects DefaultWatchdogMultiple).
	Multiple float64
	// Floor is the minimum age before any query may be flagged, so a cold
	// p99 (few samples, or all fast) does not flag healthy queries
	// (<= 0 selects DefaultWatchdogFloor).
	Floor time.Duration
	// P99 returns the current rolling p99 query latency, typically from an
	// internal/obs histogram. May return 0 before any samples; the Floor
	// still applies. Nil disables the p99 term (only Floor gates).
	P99 func() time.Duration
	// OnStuck is invoked once per flagged query with its snapshot and a
	// full goroutine stack dump. Called from the watchdog goroutine;
	// implementations should be quick or hand off.
	OnStuck func(snap HandleSnapshot, stack []byte)
}

// Watchdog defaults.
const (
	DefaultWatchdogInterval = 2 * time.Second
	DefaultWatchdogMultiple = 5.0
	DefaultWatchdogFloor    = 5 * time.Second
)

// watchdogStackBytes bounds the captured all-goroutine stack dump.
const watchdogStackBytes = 1 << 20

// Watchdog periodically scans a Registry for queries running far beyond
// the rolling p99 and captures a goroutine stack dump exactly once per
// flagged query (Handle.flag is a CAS, so a query is never dumped twice
// even if it stays stuck across many scans).
type Watchdog struct {
	reg *Registry
	cfg WatchdogConfig

	stopOnce sync.Once
	stop     chan struct{}
	stopped  chan struct{}
}

// NewWatchdog starts the watchdog goroutine over reg. Returns nil when
// reg is nil (the disabled watchdog; Stop and CheckNow are nil-safe).
func NewWatchdog(reg *Registry, cfg WatchdogConfig) *Watchdog {
	if reg == nil {
		return nil
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultWatchdogInterval
	}
	if cfg.Multiple <= 0 {
		cfg.Multiple = DefaultWatchdogMultiple
	}
	if cfg.Floor <= 0 {
		cfg.Floor = DefaultWatchdogFloor
	}
	w := &Watchdog{
		reg:     reg,
		cfg:     cfg,
		stop:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	go w.loop()
	return w
}

func (w *Watchdog) loop() {
	defer close(w.stopped)
	t := time.NewTicker(w.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-w.stop:
			return
		case <-t.C:
			w.CheckNow()
		}
	}
}

// Stop halts the watchdog goroutine and waits for it to exit. Nil-safe
// and idempotent.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.stopOnce.Do(func() { close(w.stop) })
	<-w.stopped
}

// CheckNow runs one scan immediately (the ticker calls this; tests call
// it directly for determinism) and returns how many queries were newly
// flagged. Nil-safe.
func (w *Watchdog) CheckNow() int {
	if w == nil {
		return 0
	}
	threshold := w.threshold()
	now := time.Now()
	flagged := 0
	var stack []byte // captured at most once per scan, shared by this scan's callbacks
	w.reg.visit(func(h *Handle) {
		if now.Sub(h.start) < threshold {
			return
		}
		if !h.flag() {
			return // already captured on an earlier scan
		}
		flagged++
		if w.cfg.OnStuck == nil {
			return
		}
		if stack == nil {
			buf := make([]byte, watchdogStackBytes)
			stack = buf[:runtime.Stack(buf, true)]
		}
		w.cfg.OnStuck(h.Snapshot(now), stack)
	})
	return flagged
}

// threshold computes the age beyond which a query counts as stuck:
// max(Floor, Multiple × p99).
func (w *Watchdog) threshold() time.Duration {
	th := w.cfg.Floor
	if w.cfg.P99 != nil {
		if p99 := w.cfg.P99(); p99 > 0 {
			if scaled := time.Duration(float64(p99) * w.cfg.Multiple); scaled > th {
				th = scaled
			}
		}
	}
	return th
}
