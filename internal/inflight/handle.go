// Package inflight is the live-query inspection layer of the query
// system: a lock-light registry where every executing query holds a
// Handle — identity (id, fingerprint, engine, admission verdict, start
// time) plus atomic progress counters (current phase, graphs processed /
// total, candidates, enumeration steps, auxiliary bytes) — so an
// operator can see what is running *right now*, not just what already
// finished. On top of the registry sit remote cancellation (close the
// handle's channel, which the engines' cooperative cancellation polls
// through internal/budget) and the stuck-query watchdog (watchdog.go).
//
// The paper's enumeration phase is exponential in the worst case; a
// pathological query is otherwise invisible until it times out or trips
// a budget. The registry makes it visible mid-flight and stoppable
// without restarting the process.
//
// The package is standard-library only, like internal/obs. Fingerprints
// travel as raw uint64 so no telemetry dependency is needed. Every
// Handle method is safe on a nil receiver (a nil handle is the disabled
// tracker, costing one branch), and every progress mutation is a single
// atomic operation — no locks, no allocation — so handles may be updated
// from parallel verification workers and polled concurrently by HTTP
// handlers.
package inflight

import (
	"sync"
	"sync/atomic"
	"time"
)

// Phase is the coarse stage a query is currently in. The fused vcFV/IvcFV
// pipelines alternate filter and verify per data graph, so they report
// PhaseFused rather than flapping between the two.
type Phase uint32

// Phases, in lifecycle order.
const (
	// PhaseStarting: registered, before the engine classified its work.
	PhaseStarting Phase = iota
	// PhaseFilter: index probe or vertex-connectivity filtering.
	PhaseFilter
	// PhaseVerify: per-candidate subgraph isomorphism tests.
	PhaseVerify
	// PhaseFused: interleaved per-graph filter+verify (vcFV, IvcFV).
	PhaseFused
)

var phaseNames = [...]string{"starting", "filter", "verify", "filter+verify"}

// String returns the phase's wire name.
func (p Phase) String() string {
	if int(p) < len(phaseNames) {
		return phaseNames[p]
	}
	return "unknown"
}

// Handle is one live query's registry entry. Identity fields are written
// once at registration; progress fields are atomics updated from the
// engine hot paths and read by concurrent snapshots. All methods are
// nil-safe.
type Handle struct {
	id          uint64
	fingerprint uint64
	engine      string
	verdict     string
	start       time.Time

	phase       atomic.Uint32
	graphsDone  atomic.Int64
	graphsTotal atomic.Int64
	candidates  atomic.Int64
	answers     atomic.Int64
	steps       atomic.Uint64
	auxBytes    atomic.Int64

	cancelled atomic.Bool
	flagged   atomic.Bool // watchdog captured this query's stack already

	cancelOnce sync.Once
	cancelCh   chan struct{}
	doneOnce   sync.Once
	done       chan struct{} // closed on deregistration

	slot int // registry slot, -1 when the registry was full (untracked)
}

// ID returns the handle's registry-unique id (0 on nil).
func (h *Handle) ID() uint64 {
	if h == nil {
		return 0
	}
	return h.id
}

// Fingerprint returns the query's canonical shape hash as registered.
func (h *Handle) Fingerprint() uint64 {
	if h == nil {
		return 0
	}
	return h.fingerprint
}

// Engine returns the engine configuration running the query.
func (h *Handle) Engine() string {
	if h == nil {
		return ""
	}
	return h.engine
}

// Start returns the registration time (zero on nil).
func (h *Handle) Start() time.Time {
	if h == nil {
		return time.Time{}
	}
	return h.start
}

// SetPhase records the stage the query just entered: one atomic store.
func (h *Handle) SetPhase(p Phase) {
	if h == nil {
		return
	}
	h.phase.Store(uint32(p))
}

// GraphDone counts one data graph fully processed: one atomic add.
func (h *Handle) GraphDone() {
	if h == nil {
		return
	}
	h.graphsDone.Add(1)
}

// SetGraphsTotal records how many data graphs the query will process
// (the database size, or the index survivor count once known).
func (h *Handle) SetGraphsTotal(n int) {
	if h == nil {
		return
	}
	h.graphsTotal.Store(int64(n))
}

// AddCandidates counts graphs that survived filtering into verification.
func (h *Handle) AddCandidates(n int) {
	if h == nil {
		return
	}
	h.candidates.Add(int64(n))
}

// AddAnswers counts answers found so far.
func (h *Handle) AddAnswers(n int) {
	if h == nil {
		return
	}
	h.answers.Add(int64(n))
}

// GrowAux raises the recorded auxiliary-memory high-water mark to b if
// larger (monotonic max over concurrent workers).
func (h *Handle) GrowAux(b int64) {
	if h == nil {
		return
	}
	for {
		cur := h.auxBytes.Load()
		if b <= cur || h.auxBytes.CompareAndSwap(cur, b) {
			return
		}
	}
}

// StepCounter returns the enumeration-step counter the matching layer
// flushes into at budget-checkpoint strides (budget.Checkpoint.Progress),
// or nil on a nil handle — so engines can pass it unconditionally.
func (h *Handle) StepCounter() *atomic.Uint64 {
	if h == nil {
		return nil
	}
	return &h.steps
}

// Cancel requests cooperative cancellation: the first call closes the
// handle's cancel channel (merged into the engine's Cancel option at
// registration) and reports true; later calls and nil handles report
// false. The query observes the closure at its next budget checkpoint and
// returns with Cancelled set.
func (h *Handle) Cancel() bool {
	if h == nil {
		return false
	}
	first := false
	h.cancelOnce.Do(func() {
		h.cancelled.Store(true)
		close(h.cancelCh)
		first = true
	})
	return first
}

// Cancelled reports whether Cancel was called.
func (h *Handle) Cancelled() bool {
	return h != nil && h.cancelled.Load()
}

// CancelChan returns the channel closed by Cancel (nil on a nil handle,
// which budget.Cancelled treats as "never cancelled").
func (h *Handle) CancelChan() <-chan struct{} {
	if h == nil {
		return nil
	}
	return h.cancelCh
}

// MergeCancel returns a channel that closes when either the caller's
// cancel channel closes or Cancel is invoked on the handle — the channel
// an engine should poll so remote cancellation and the caller's own
// deadline/disconnect both stop the query. With no caller channel the
// handle's own channel is returned directly (no goroutine); otherwise a
// merge goroutine runs until one source fires or the handle is
// deregistered.
func (h *Handle) MergeCancel(caller <-chan struct{}) <-chan struct{} {
	if h == nil {
		return caller
	}
	if caller == nil {
		return h.cancelCh
	}
	merged := make(chan struct{})
	go func() {
		select {
		case <-caller:
		case <-h.cancelCh:
		case <-h.done:
			// Query finished; nothing left to cancel. Close anyway so the
			// channel never leaks a reader.
		}
		close(merged)
	}()
	return merged
}

// flag marks the handle as watchdog-flagged; true on the first call only,
// so exactly one stack dump is captured per stuck query.
func (h *Handle) flag() bool {
	return h != nil && h.flagged.CompareAndSwap(false, true)
}

// Flagged reports whether the watchdog already captured this query.
func (h *Handle) Flagged() bool {
	return h != nil && h.flagged.Load()
}

// Registry tracks the live handles. Registration claims a slot in a fixed
// atomic-pointer array by CAS (no lock on the query path); snapshots and
// cancellation scan the array without blocking writers. When every slot
// is taken the query still runs — it gets an unlisted handle and the
// overflow counter moves, because query execution must never fail on
// account of its own observability.
type Registry struct {
	slots  []atomic.Pointer[Handle]
	nextID atomic.Uint64
	cursor atomic.Uint64

	registered atomic.Int64 // total handles ever registered
	overflowed atomic.Int64 // registrations that found no free slot
	cancels    atomic.Int64 // successful Cancel deliveries via the registry
}

// DefaultRegistrySlots is the slot count when none is given — comfortably
// above any sane admission-control concurrency limit.
const DefaultRegistrySlots = 256

// NewRegistry returns a registry with the given slot capacity (<= 0
// selects DefaultRegistrySlots).
func NewRegistry(slots int) *Registry {
	if slots <= 0 {
		slots = DefaultRegistrySlots
	}
	return &Registry{slots: make([]atomic.Pointer[Handle], slots)}
}

// RegisterOptions carries a new handle's identity.
type RegisterOptions struct {
	// Engine is the engine configuration about to run the query.
	Engine string
	// Fingerprint is the query's canonical shape hash (raw uint64).
	Fingerprint uint64
	// Verdict is the admission outcome ("ok" when admission control
	// admitted the query; empty when admission was disabled).
	Verdict string
}

// Register creates and publishes a live handle. Safe on a nil registry
// (returns nil, the disabled tracker). The caller must Deregister the
// handle when the query returns.
func (r *Registry) Register(opts RegisterOptions) *Handle {
	if r == nil {
		return nil
	}
	h := &Handle{
		id:          r.nextID.Add(1),
		fingerprint: opts.Fingerprint,
		engine:      opts.Engine,
		verdict:     opts.Verdict,
		start:       time.Now(),
		cancelCh:    make(chan struct{}),
		done:        make(chan struct{}),
		slot:        -1,
	}
	r.registered.Add(1)
	n := uint64(len(r.slots))
	base := r.cursor.Add(1)
	for i := uint64(0); i < n; i++ {
		slot := int((base + i) % n)
		if r.slots[slot].CompareAndSwap(nil, h) {
			h.slot = slot
			return h
		}
	}
	// Full: the query runs untracked rather than failing or blocking.
	r.overflowed.Add(1)
	return h
}

// Deregister retracts the handle from the registry and releases its merge
// goroutine (if any). Safe on nil receiver and nil handle; idempotent.
func (r *Registry) Deregister(h *Handle) {
	if h == nil {
		return
	}
	h.doneOnce.Do(func() { close(h.done) })
	if r != nil && h.slot >= 0 {
		r.slots[h.slot].CompareAndSwap(h, nil)
	}
}

// Cancel delivers cooperative cancellation to the live query with the
// given id. It reports false when no such query is live (already
// finished, never registered, or cancelled and gone).
func (r *Registry) Cancel(id uint64) bool {
	if r == nil {
		return false
	}
	for i := range r.slots {
		if h := r.slots[i].Load(); h != nil && h.id == id {
			if h.Cancel() {
				r.cancels.Add(1)
				return true
			}
			return false
		}
	}
	return false
}

// CancelAll cancels every live query (graceful-shutdown sweep) and
// returns how many cancellations were delivered.
func (r *Registry) CancelAll() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.slots {
		if h := r.slots[i].Load(); h != nil && h.Cancel() {
			r.cancels.Add(1)
			n++
		}
	}
	return n
}

// Len counts the live handles.
func (r *Registry) Len() int {
	if r == nil {
		return 0
	}
	n := 0
	for i := range r.slots {
		if r.slots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Stats reports the registry's lifetime counters: total registrations,
// registrations that overflowed the slot array, and cancellations
// delivered through the registry.
func (r *Registry) Stats() (registered, overflowed, cancels int64) {
	if r == nil {
		return 0, 0, 0
	}
	return r.registered.Load(), r.overflowed.Load(), r.cancels.Load()
}
