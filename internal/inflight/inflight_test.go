package inflight

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestNilHandleIsSafe(t *testing.T) {
	var h *Handle
	if h.ID() != 0 || h.Fingerprint() != 0 || h.Engine() != "" || !h.Start().IsZero() {
		t.Fatal("nil handle identity accessors should return zero values")
	}
	h.SetPhase(PhaseVerify)
	h.GraphDone()
	h.SetGraphsTotal(7)
	h.AddCandidates(3)
	h.AddAnswers(1)
	h.GrowAux(1024)
	if h.StepCounter() != nil {
		t.Fatal("nil handle StepCounter should be nil")
	}
	if h.Cancel() {
		t.Fatal("nil handle Cancel should report false")
	}
	if h.Cancelled() || h.Flagged() {
		t.Fatal("nil handle flags should be false")
	}
	if h.CancelChan() != nil {
		t.Fatal("nil handle CancelChan should be nil")
	}
	caller := make(chan struct{})
	if got := h.MergeCancel(caller); got != (<-chan struct{})(caller) {
		t.Fatal("nil handle MergeCancel should return the caller channel unchanged")
	}
	snap := h.Snapshot(time.Now())
	if snap.ID != 0 {
		t.Fatal("nil handle Snapshot should be zero")
	}
}

func TestNilRegistryIsSafe(t *testing.T) {
	var r *Registry
	if h := r.Register(RegisterOptions{Engine: "x"}); h != nil {
		t.Fatal("nil registry Register should return nil handle")
	}
	r.Deregister(nil)
	if r.Cancel(1) || r.CancelAll() != 0 || r.Len() != 0 {
		t.Fatal("nil registry operations should be no-ops")
	}
	if snaps := r.Snapshot(); snaps != nil {
		t.Fatal("nil registry Snapshot should be nil")
	}
	a, b, c := r.Stats()
	if a != 0 || b != 0 || c != 0 {
		t.Fatal("nil registry Stats should be zero")
	}
}

func TestRegisterDeregisterLifecycle(t *testing.T) {
	r := NewRegistry(4)
	h := r.Register(RegisterOptions{Engine: "vcfv", Fingerprint: 0xabcd, Verdict: "ok"})
	if h == nil {
		t.Fatal("Register returned nil")
	}
	if h.ID() == 0 {
		t.Fatal("handle id should be nonzero")
	}
	if h.Engine() != "vcfv" || h.Fingerprint() != 0xabcd {
		t.Fatalf("identity mismatch: %q %x", h.Engine(), h.Fingerprint())
	}
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	h.SetPhase(PhaseFilter)
	h.SetGraphsTotal(10)
	h.GraphDone()
	h.GraphDone()
	h.AddCandidates(2)
	h.AddAnswers(1)
	h.GrowAux(512)
	h.GrowAux(256) // must not shrink the high-water mark
	h.StepCounter().Add(4096)

	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("Snapshot len = %d, want 1", len(snaps))
	}
	s := snaps[0]
	if s.ID != h.ID() || s.Engine != "vcfv" || s.Verdict != "ok" {
		t.Fatalf("snapshot identity mismatch: %+v", s)
	}
	if s.Fingerprint != "000000000000abcd" {
		t.Fatalf("fingerprint hex = %q", s.Fingerprint)
	}
	if s.Phase != "filter" || s.GraphsDone != 2 || s.GraphsTotal != 10 {
		t.Fatalf("progress mismatch: %+v", s)
	}
	if s.Candidates != 2 || s.Answers != 1 || s.AuxBytes != 512 || s.Steps != 4096 {
		t.Fatalf("counter mismatch: %+v", s)
	}

	r.Deregister(h)
	if r.Len() != 0 {
		t.Fatalf("Len after Deregister = %d, want 0", r.Len())
	}
	r.Deregister(h) // idempotent
	reg, ovf, _ := r.Stats()
	if reg != 1 || ovf != 0 {
		t.Fatalf("Stats = (%d,%d), want (1,0)", reg, ovf)
	}
}

func TestRegistryOverflowStillRuns(t *testing.T) {
	r := NewRegistry(2)
	h1 := r.Register(RegisterOptions{Engine: "a"})
	h2 := r.Register(RegisterOptions{Engine: "b"})
	h3 := r.Register(RegisterOptions{Engine: "c"}) // no free slot
	if h3 == nil {
		t.Fatal("overflow registration must still return a usable handle")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d, want 2", r.Len())
	}
	_, ovf, _ := r.Stats()
	if ovf != 1 {
		t.Fatalf("overflowed = %d, want 1", ovf)
	}
	// The untracked handle still supports progress and cancellation.
	h3.SetPhase(PhaseVerify)
	if !h3.Cancel() {
		t.Fatal("untracked handle Cancel should work")
	}
	r.Deregister(h3)
	r.Deregister(h1)
	r.Deregister(h2)
	if r.Len() != 0 {
		t.Fatalf("Len = %d, want 0", r.Len())
	}
}

func TestCancelByID(t *testing.T) {
	r := NewRegistry(8)
	h := r.Register(RegisterOptions{Engine: "parallel"})
	if r.Cancel(h.ID() + 999) {
		t.Fatal("cancelling an unknown id should report false")
	}
	if !r.Cancel(h.ID()) {
		t.Fatal("first Cancel should report true")
	}
	select {
	case <-h.CancelChan():
	default:
		t.Fatal("cancel channel should be closed")
	}
	if !h.Cancelled() {
		t.Fatal("Cancelled should be true")
	}
	if r.Cancel(h.ID()) {
		t.Fatal("second Cancel should report false")
	}
	_, _, cancels := r.Stats()
	if cancels != 1 {
		t.Fatalf("cancels = %d, want 1", cancels)
	}
	r.Deregister(h)
	if r.Cancel(h.ID()) {
		t.Fatal("cancelling a deregistered id should report false")
	}
}

func TestCancelAll(t *testing.T) {
	r := NewRegistry(8)
	var hs []*Handle
	for i := 0; i < 5; i++ {
		hs = append(hs, r.Register(RegisterOptions{Engine: "x"}))
	}
	hs[0].Cancel() // pre-cancelled: CancelAll must not double-count it
	if n := r.CancelAll(); n != 4 {
		t.Fatalf("CancelAll = %d, want 4", n)
	}
	for i, h := range hs {
		if !h.Cancelled() {
			t.Fatalf("handle %d not cancelled", i)
		}
	}
	for _, h := range hs {
		r.Deregister(h)
	}
}

func TestMergeCancel(t *testing.T) {
	r := NewRegistry(4)

	t.Run("nil caller returns handle channel", func(t *testing.T) {
		h := r.Register(RegisterOptions{})
		defer r.Deregister(h)
		merged := h.MergeCancel(nil)
		h.Cancel()
		select {
		case <-merged:
		case <-time.After(time.Second):
			t.Fatal("merged channel did not close on Cancel")
		}
	})

	t.Run("caller close propagates", func(t *testing.T) {
		h := r.Register(RegisterOptions{})
		defer r.Deregister(h)
		caller := make(chan struct{})
		merged := h.MergeCancel(caller)
		close(caller)
		select {
		case <-merged:
		case <-time.After(time.Second):
			t.Fatal("merged channel did not close on caller close")
		}
	})

	t.Run("handle cancel propagates", func(t *testing.T) {
		h := r.Register(RegisterOptions{})
		defer r.Deregister(h)
		merged := h.MergeCancel(make(chan struct{}))
		h.Cancel()
		select {
		case <-merged:
		case <-time.After(time.Second):
			t.Fatal("merged channel did not close on handle Cancel")
		}
	})

	t.Run("deregister releases the merge goroutine", func(t *testing.T) {
		h := r.Register(RegisterOptions{})
		merged := h.MergeCancel(make(chan struct{}))
		r.Deregister(h)
		select {
		case <-merged:
		case <-time.After(time.Second):
			t.Fatal("merged channel did not close on Deregister")
		}
	})
}

func TestSnapshotSortedByAgeDescending(t *testing.T) {
	r := NewRegistry(8)
	old := r.Register(RegisterOptions{Engine: "old"})
	time.Sleep(5 * time.Millisecond)
	young := r.Register(RegisterOptions{Engine: "young"})
	defer r.Deregister(old)
	defer r.Deregister(young)
	snaps := r.Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("len = %d, want 2", len(snaps))
	}
	if snaps[0].Engine != "old" || snaps[1].Engine != "young" {
		t.Fatalf("snapshot order wrong: %s, %s", snaps[0].Engine, snaps[1].Engine)
	}
	if snaps[0].AgeMS < snaps[1].AgeMS {
		t.Fatalf("ages not descending: %d < %d", snaps[0].AgeMS, snaps[1].AgeMS)
	}
}

func TestWriteTable(t *testing.T) {
	snaps := []HandleSnapshot{
		{ID: 7, Fingerprint: "00000000deadbeef", Engine: "parallel-cfql", Phase: "verify",
			AgeMS: 1500, GraphsDone: 3, GraphsTotal: 10, Candidates: 5, Answers: 2,
			Steps: 123456, AuxBytes: 2 << 20, Cancelled: true, Flagged: true},
		{ID: 8, Fingerprint: "0000000000000001", Engine: "vcfv", Phase: "starting",
			AgeMS: 10},
	}
	var buf bytes.Buffer
	WriteTable(&buf, snaps)
	out := buf.String()
	for _, want := range []string{"FINGERPRINT", "00000000deadbeef", "parallel-cfql", "verify", "3/10", "CW", "2.0MiB", "0/?"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table missing %q:\n%s", want, out)
		}
	}
	if lines := strings.Count(out, "\n"); lines != 3 {
		t.Fatalf("table lines = %d, want 3 (header + 2 rows):\n%s", lines, out)
	}
}

func TestPhaseString(t *testing.T) {
	cases := map[Phase]string{
		PhaseStarting: "starting",
		PhaseFilter:   "filter",
		PhaseVerify:   "verify",
		PhaseFused:    "filter+verify",
		Phase(99):     "unknown",
	}
	for p, want := range cases {
		if got := p.String(); got != want {
			t.Fatalf("Phase(%d).String() = %q, want %q", p, got, want)
		}
	}
}

// TestConcurrentRegistry hammers the registry from many goroutines:
// register/update/snapshot/cancel/deregister racing, ending empty.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry(32)
	const workers = 16
	const perWorker = 200
	stopPoll := make(chan struct{})
	pollDone := make(chan struct{})
	go func() {
		defer close(pollDone)
		for {
			select {
			case <-stopPoll:
				return
			default:
			}
			r.Snapshot()
			r.Len()
			r.CancelAll()
		}
	}()
	var wg sync.WaitGroup
	var cancelledSeen atomic.Int64
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				h := r.Register(RegisterOptions{Engine: "storm", Fingerprint: uint64(w<<16 | i)})
				h.SetPhase(PhaseFused)
				h.GraphDone()
				h.StepCounter().Add(1)
				if i%3 == 0 {
					r.Cancel(h.ID())
				}
				if h.Cancelled() {
					cancelledSeen.Add(1)
				}
				r.Deregister(h)
			}
		}(w)
	}
	wg.Wait()
	close(stopPoll)
	<-pollDone
	if r.Len() != 0 {
		t.Fatalf("registry not empty at end: %d", r.Len())
	}
	reg, _, _ := r.Stats()
	if reg != workers*perWorker {
		t.Fatalf("registered = %d, want %d", reg, workers*perWorker)
	}
}

// TestHandleHotMethodsZeroAlloc gates the progress mutators the engines
// call per graph / per stride: they must not allocate.
func TestHandleHotMethodsZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are perturbed under -race")
	}
	r := NewRegistry(4)
	h := r.Register(RegisterOptions{Engine: "alloc"})
	defer r.Deregister(h)
	sc := h.StepCounter()
	if avg := testing.AllocsPerRun(1000, func() {
		h.SetPhase(PhaseVerify)
		h.GraphDone()
		h.AddCandidates(1)
		h.AddAnswers(1)
		h.GrowAux(64)
		sc.Add(4096)
	}); avg != 0 {
		t.Fatalf("hot handle methods allocate %.1f/op, want 0", avg)
	}
	// The nil (disabled) handle must also be free.
	var nh *Handle
	if avg := testing.AllocsPerRun(1000, func() {
		nh.SetPhase(PhaseVerify)
		nh.GraphDone()
		nh.AddCandidates(1)
		nh.GrowAux(64)
	}); avg != 0 {
		t.Fatalf("nil handle methods allocate %.1f/op, want 0", avg)
	}
}
