//go:build race

package inflight

const raceEnabled = true
