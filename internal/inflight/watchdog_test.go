package inflight

import (
	"bytes"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// stoppedWatchdog builds a watchdog whose ticker never meaningfully
// fires, so tests drive scans deterministically through CheckNow.
func stoppedWatchdog(t *testing.T, reg *Registry, cfg WatchdogConfig) *Watchdog {
	t.Helper()
	if cfg.Interval == 0 {
		cfg.Interval = time.Hour
	}
	w := NewWatchdog(reg, cfg)
	if w == nil {
		t.Fatal("NewWatchdog returned nil for non-nil registry")
	}
	t.Cleanup(w.Stop)
	return w
}

func TestWatchdogNilSafe(t *testing.T) {
	var w *Watchdog
	w.Stop()
	if w.CheckNow() != 0 {
		t.Fatal("nil watchdog CheckNow should be 0")
	}
	if NewWatchdog(nil, WatchdogConfig{}) != nil {
		t.Fatal("NewWatchdog(nil) should return nil")
	}
}

func TestWatchdogFlagsExactlyOnce(t *testing.T) {
	reg := NewRegistry(8)
	var calls atomic.Int64
	var gotStack atomic.Bool
	var gotSnap HandleSnapshot
	var mu sync.Mutex
	w := stoppedWatchdog(t, reg, WatchdogConfig{
		Floor: time.Nanosecond, // everything counts as stuck
		OnStuck: func(snap HandleSnapshot, stack []byte) {
			calls.Add(1)
			gotStack.Store(len(stack) > 0 && bytes.Contains(stack, []byte("goroutine")))
			mu.Lock()
			gotSnap = snap
			mu.Unlock()
		},
	})
	h := reg.Register(RegisterOptions{Engine: "stuck", Fingerprint: 0xfeed})
	defer reg.Deregister(h)
	time.Sleep(time.Millisecond)

	if n := w.CheckNow(); n != 1 {
		t.Fatalf("first CheckNow flagged %d, want 1", n)
	}
	// Repeated scans while the query stays stuck must not re-capture.
	for i := 0; i < 5; i++ {
		if n := w.CheckNow(); n != 0 {
			t.Fatalf("scan %d re-flagged %d queries, want 0", i, n)
		}
	}
	if calls.Load() != 1 {
		t.Fatalf("OnStuck called %d times, want 1", calls.Load())
	}
	if !gotStack.Load() {
		t.Fatal("OnStuck did not receive a goroutine stack dump")
	}
	mu.Lock()
	defer mu.Unlock()
	if gotSnap.Engine != "stuck" || gotSnap.Fingerprint != "000000000000feed" {
		t.Fatalf("snapshot mismatch: %+v", gotSnap)
	}
	if !h.Flagged() {
		t.Fatal("handle should be Flagged")
	}
}

func TestWatchdogRespectsFloor(t *testing.T) {
	reg := NewRegistry(8)
	w := stoppedWatchdog(t, reg, WatchdogConfig{Floor: time.Hour})
	h := reg.Register(RegisterOptions{Engine: "young"})
	defer reg.Deregister(h)
	if n := w.CheckNow(); n != 0 {
		t.Fatalf("young query flagged under hour floor: %d", n)
	}
	if h.Flagged() {
		t.Fatal("handle should not be Flagged")
	}
}

func TestWatchdogP99Threshold(t *testing.T) {
	reg := NewRegistry(8)
	p99 := time.Hour
	w := stoppedWatchdog(t, reg, WatchdogConfig{
		Floor:    time.Nanosecond,
		Multiple: 2,
		P99:      func() time.Duration { return p99 },
	})
	h := reg.Register(RegisterOptions{Engine: "q"})
	defer reg.Deregister(h)
	time.Sleep(time.Millisecond)
	// 2 × 1h threshold: not stuck.
	if n := w.CheckNow(); n != 0 {
		t.Fatalf("flagged below p99 threshold: %d", n)
	}
	// p99 collapses (e.g. workload is all microsecond queries): the same
	// query now exceeds 2 × p99 and the nanosecond floor.
	p99 = time.Nanosecond
	if n := w.CheckNow(); n != 1 {
		t.Fatalf("not flagged above p99 threshold: %d", n)
	}
}

func TestWatchdogZeroP99UsesFloor(t *testing.T) {
	reg := NewRegistry(8)
	w := stoppedWatchdog(t, reg, WatchdogConfig{
		Floor: time.Hour,
		P99:   func() time.Duration { return 0 }, // no samples yet
	})
	h := reg.Register(RegisterOptions{Engine: "q"})
	defer reg.Deregister(h)
	if n := w.CheckNow(); n != 0 {
		t.Fatalf("cold p99 must not flag under the floor: %d", n)
	}
}

func TestWatchdogTickerFires(t *testing.T) {
	reg := NewRegistry(8)
	flagged := make(chan struct{})
	var once sync.Once
	w := NewWatchdog(reg, WatchdogConfig{
		Interval: 5 * time.Millisecond,
		Floor:    time.Nanosecond,
		OnStuck: func(HandleSnapshot, []byte) {
			once.Do(func() { close(flagged) })
		},
	})
	defer w.Stop()
	h := reg.Register(RegisterOptions{Engine: "tick"})
	defer reg.Deregister(h)
	select {
	case <-flagged:
	case <-time.After(5 * time.Second):
		t.Fatal("ticker-driven scan never flagged the stuck query")
	}
}

func TestWatchdogStopIdempotent(t *testing.T) {
	reg := NewRegistry(4)
	w := NewWatchdog(reg, WatchdogConfig{Interval: time.Hour})
	w.Stop()
	w.Stop() // second Stop must not panic or hang
}
