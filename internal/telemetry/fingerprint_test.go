package telemetry

import (
	"encoding/json"
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

// permuteGraph renumbers g's vertices by perm (perm[old] = new) — an
// isomorphic copy with a different vertex order.
func permuteGraph(g *graph.Graph, perm []int) *graph.Graph {
	n := g.NumVertices()
	labels := make([]graph.Label, n)
	for v := 0; v < n; v++ {
		labels[perm[v]] = g.Label(graph.VertexID(v))
	}
	var edges []graph.Edge
	for v := 0; v < n; v++ {
		for _, w := range g.Neighbors(graph.VertexID(v)) {
			if int(w) > v {
				edges = append(edges, graph.Edge{
					U: graph.VertexID(perm[v]),
					V: graph.VertexID(perm[int(w)]),
				})
			}
		}
	}
	return graph.MustFromEdges(labels, edges)
}

// randomGraph builds a random connected-ish labeled graph.
func randomGraph(rng *rand.Rand, n, extraEdges, numLabels int) *graph.Graph {
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = graph.Label(rng.Intn(numLabels))
	}
	seen := map[[2]int]bool{}
	var edges []graph.Edge
	addEdge := func(u, v int) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			return
		}
		seen[[2]int{u, v}] = true
		edges = append(edges, graph.Edge{U: graph.VertexID(u), V: graph.VertexID(v)})
	}
	// Spanning tree first so the graph is connected.
	for v := 1; v < n; v++ {
		addEdge(rng.Intn(v), v)
	}
	for i := 0; i < extraEdges; i++ {
		addEdge(rng.Intn(n), rng.Intn(n))
	}
	return graph.MustFromEdges(labels, edges)
}

// TestFingerprintRenumberingInvariance is the property the fingerprint
// exists for: isomorphic queries that differ only in vertex numbering
// hash identically.
func TestFingerprintRenumberingInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		g := randomGraph(rng, n, rng.Intn(2*n), 1+rng.Intn(4))
		want := Compute(g)
		for p := 0; p < 5; p++ {
			perm := rng.Perm(n)
			h := permuteGraph(g, perm)
			if got := Compute(h); got != want {
				t.Fatalf("trial %d perm %d: fingerprint changed under renumbering: %s vs %s",
					trial, p, got, want)
			}
		}
	}
}

// TestFingerprintSensitivity: structurally or label-wise different queries
// should (virtually always) hash differently.
func TestFingerprintSensitivity(t *testing.T) {
	// Path a-b-c vs triangle a-b-c.
	path := graph.MustFromEdges([]graph.Label{0, 1, 2}, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	tri := graph.MustFromEdges([]graph.Label{0, 1, 2}, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if Compute(path) == Compute(tri) {
		t.Fatal("path and triangle collide")
	}
	// Same structure, one label changed.
	relabeled := graph.MustFromEdges([]graph.Label{0, 1, 3}, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	if Compute(path) == Compute(relabeled) {
		t.Fatal("relabeled path collides with original")
	}
	// Deterministic across calls.
	if Compute(path) != Compute(path) {
		t.Fatal("fingerprint not deterministic")
	}
	if Compute(path) == 0 {
		t.Fatal("fingerprint must never be zero (reserved for unset)")
	}
}

func TestFingerprintEmptyGraph(t *testing.T) {
	g := graph.MustFromEdges(nil, nil)
	if Compute(g) == 0 {
		t.Fatal("empty graph fingerprint must be non-zero")
	}
	if Compute(g) != Compute(g) {
		t.Fatal("empty graph fingerprint not deterministic")
	}
}

func TestFingerprintJSONRoundTrip(t *testing.T) {
	f := Fingerprint(0xdeadbeefcafe1234)
	b, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"deadbeefcafe1234"` {
		t.Fatalf("marshal = %s", b)
	}
	var back Fingerprint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Fatalf("round trip: %x != %x", uint64(back), uint64(f))
	}
	// Lenient decimal form.
	if err := json.Unmarshal([]byte("77"), &back); err != nil {
		t.Fatal(err)
	}
	if back != 77 {
		t.Fatalf("decimal form: got %d", back)
	}
	// String/Parse round trip.
	p, err := ParseFingerprint(f.String())
	if err != nil {
		t.Fatal(err)
	}
	if p != f {
		t.Fatalf("parse round trip: %s != %s", p, f)
	}
}
