package telemetry

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestExporterStormRetainsAllAnomalous hammers one exporter from many
// goroutines with a mixed healthy/anomalous stream through a deliberately
// tiny ring, then asserts the tail-sampling contract end to end:
//
//   - every anomalous event is in the output, exactly once (keyed by a
//     unique fingerprint per anomalous emit);
//   - the healthy keep-rate matches the configured fraction exactly
//     (counter-based sampling is deterministic in aggregate);
//   - drops are only ever healthy events.
//
// Run under -race this is also the exporter's concurrency test.
func TestExporterStormRetainsAllAnomalous(t *testing.T) {
	const (
		workers          = 16
		perWorker        = 500
		anomalousEveryth = 5 // every 5th emit per worker is anomalous
	)
	var buf syncBuffer
	x := NewWriterExporter(&buf, ExportConfig{HealthyFraction: 0.25, Buffer: 8})

	var anomalousSent atomic.Int64
	var healthySent atomic.Int64
	var nextFP atomic.Uint64
	nextFP.Store(1 << 32) // anomalous fingerprints: unique, high range

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if i%anomalousEveryth == 0 {
					fp := Fingerprint(nextFP.Add(1))
					ev := Event{Fingerprint: fp, DurationUS: int64(i)}
					// Rotate through the anomaly kinds.
					switch i % 4 {
					case 0:
						ev.TimedOut = true
					case 1:
						ev.Error = true
					case 2:
						ev.Skipped = 1
						ev.Panics = 1
					case 3:
						ev.Verdict = VerdictShed
					}
					anomalousSent.Add(1)
					x.Emit(ev)
				} else {
					healthySent.Add(1)
					x.Emit(Event{Fingerprint: Fingerprint(1 + w), DurationUS: int64(i), Verdict: VerdictOK})
				}
			}
		}(w)
	}
	wg.Wait()
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}

	evs := decodeEvents(t, buf.String())
	seenAnomalous := map[Fingerprint]int{}
	var healthyKept int64
	for _, ev := range evs {
		if ev.Anomalous() {
			seenAnomalous[ev.Fingerprint]++
		} else {
			healthyKept++
		}
	}

	// 1. Retention: 100% of anomalous events survive the storm.
	if int64(len(seenAnomalous)) != anomalousSent.Load() {
		t.Fatalf("retained %d distinct anomalous events, sent %d",
			len(seenAnomalous), anomalousSent.Load())
	}
	for fp, n := range seenAnomalous {
		if n != 1 {
			t.Fatalf("anomalous fingerprint %s appeared %d times", fp, n)
		}
	}

	// 2. Healthy sampling: the shared counter keeps exactly 1-in-4 of the
	// healthy emits (minus any backpressure drops, which are counted).
	st := x.Stats()
	wantKept := healthySent.Load()/4 - st.Dropped
	if healthyKept != wantKept {
		t.Fatalf("healthy kept = %d, want %d (sent %d, dropped %d)",
			healthyKept, wantKept, healthySent.Load(), st.Dropped)
	}
	if st.SampledOut != healthySent.Load()-healthySent.Load()/4 {
		t.Fatalf("sampled out = %d, want %d", st.SampledOut, healthySent.Load()-healthySent.Load()/4)
	}

	// 3. Accounting closes: every emit is exported, sampled out, or dropped.
	totalSent := anomalousSent.Load() + healthySent.Load()
	if st.Exported+st.SampledOut+st.Dropped != totalSent {
		t.Fatalf("accounting leak: exported %d + sampled %d + dropped %d != sent %d",
			st.Exported, st.SampledOut, st.Dropped, totalSent)
	}
}

// TestProfileStormCountsAnomalies drives the same storm shape through a
// Profile and checks the failure tallies survive concurrent recording.
func TestProfileStormCountsAnomalies(t *testing.T) {
	p := NewProfile(32)
	const workers, perWorker = 8, 400
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				ev := Event{Fingerprint: Fingerprint(1 + i%4), DurationUS: int64(i), Verdict: VerdictOK}
				if i%10 == 0 {
					ev.TimedOut = true
				}
				p.Record(ev)
			}
		}(w)
	}
	wg.Wait()
	snap := p.Snapshot(0)
	if snap.Seen != workers*perWorker {
		t.Fatalf("seen = %d, want %d", snap.Seen, workers*perWorker)
	}
	var timeouts int64
	for _, s := range snap.Top {
		timeouts += s.Timeouts
	}
	if want := int64(workers * perWorker / 10); timeouts != want {
		t.Fatalf("timeouts = %d, want %d", timeouts, want)
	}
}
