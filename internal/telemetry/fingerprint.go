// Package telemetry is the workload-level observability layer: where
// internal/obs makes a *single* query observable (counters, Trace,
// Explain), this package makes the *population* of queries observable —
// which shapes dominate the workload, which shapes misbehave, and a
// wide-event stream that keeps every anomalous query without paying to
// keep every fast one.
//
// It provides four pieces, composed by sqserver and the CLIs:
//
//   - Fingerprint: a canonical, label-aware hash of a query graph,
//     invariant under vertex renumbering, computed once per query at the
//     engine entry point and threaded through QueryOptions, Trace, the
//     slow log, wide events and workload profiles — the join key of all
//     workload telemetry.
//   - Event: one bounded wide-event record per query (verdicts, phase
//     times, candidate totals, failure flags), cheap enough to build on
//     every request.
//   - Profile: a fixed-capacity space-saving sketch of per-fingerprint
//     heavy hitters, each slot holding counts, failure tallies and a
//     latency histogram — the data behind /debug/top.
//   - Exporter: a tail-sampled async NDJSON export of wide events (file
//     or HTTP POST) that retains 100% of anomalous queries and a
//     configurable fraction of healthy ones, with a lossy ring for
//     backpressure so export can never stall healthy queries.
//
// The package is standard-library only and its hot paths (Compute, Emit,
// Profile.Record on an existing slot) are allocation-free in steady state.
package telemetry

import (
	"fmt"
	"slices"
	"sync"

	"subgraphquery/internal/graph"
)

// Fingerprint is a canonical 64-bit hash of a query graph's labeled
// structure. Two isomorphic queries — in particular, the same query with
// its vertices renumbered — always produce the same fingerprint, so it is
// the aggregation key for workload profiles, wide events and per-shape
// bench breakdowns. Zero means "not computed".
//
// The hash is a Weisfeiler-Leman style color refinement: every vertex
// starts from its (label, degree) pair — the label-multiset and
// degree-sequence refinement — and each round replaces a vertex's color
// with a hash of its own color and the *sorted* multiset of its
// neighbors' colors. After a fixed number of rounds the fingerprint is a
// hash of the sorted final colors together with |V| and |E|. Sorting at
// every step is what buys renumbering invariance; distinct non-isomorphic
// shapes may still collide (as with any hash), which profiling tolerates.
type Fingerprint uint64

// String renders the fingerprint the way every surface displays it:
// 16 hex digits.
func (f Fingerprint) String() string { return fmt.Sprintf("%016x", uint64(f)) }

// MarshalJSON writes the fingerprint as a quoted hex string: JSON numbers
// are float64 in most readers, which silently corrupts 64-bit hashes.
func (f Fingerprint) MarshalJSON() ([]byte, error) {
	return []byte(`"` + f.String() + `"`), nil
}

// UnmarshalJSON accepts the quoted hex form (and, leniently, an unquoted
// decimal from hand-written files).
func (f *Fingerprint) UnmarshalJSON(data []byte) error {
	s := string(data)
	if len(s) >= 2 && s[0] == '"' && s[len(s)-1] == '"' {
		s = s[1 : len(s)-1]
		var v uint64
		if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
			return fmt.Errorf("telemetry: parsing fingerprint %q: %w", s, err)
		}
		*f = Fingerprint(v)
		return nil
	}
	var v uint64
	if _, err := fmt.Sscanf(s, "%d", &v); err != nil {
		return fmt.Errorf("telemetry: parsing fingerprint %q: %w", s, err)
	}
	*f = Fingerprint(v)
	return nil
}

// ParseFingerprint parses the 16-hex-digit form produced by String.
func ParseFingerprint(s string) (Fingerprint, error) {
	var v uint64
	if _, err := fmt.Sscanf(s, "%x", &v); err != nil {
		return 0, fmt.Errorf("telemetry: parsing fingerprint %q: %w", s, err)
	}
	return Fingerprint(v), nil
}

// fpRounds is the number of refinement rounds. Query graphs are small
// (the paper's sets top out at 32 edges), and three rounds propagate
// 3-hop structure — enough to separate every query-set shape in practice
// while keeping Compute a few microseconds.
const fpRounds = 3

// fpSeed seeds the mixer so a fingerprint is not trivially predictable
// from raw labels.
const fpSeed = 0x9e3779b97f4a7c15

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixing function (public domain, Vigna).
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// fpScratch holds the per-computation color buffers. Pooled so Compute is
// allocation-free in steady state: one Get/Put pair per query, buffers
// grown once and reused.
type fpScratch struct {
	cur, next []uint64 // vertex colors, current and next round
	buf       []uint64 // sorted neighbor colors / sorted final colors
}

var fpPool = sync.Pool{New: func() any { return &fpScratch{} }}

// grow sizes the buffers for an n-vertex graph without shrinking capacity.
func (s *fpScratch) grow(n int) {
	if cap(s.cur) < n {
		s.cur = make([]uint64, n)
		s.next = make([]uint64, n)
		s.buf = make([]uint64, n)
	}
	s.cur = s.cur[:n]
	s.next = s.next[:n]
	s.buf = s.buf[:n]
}

// Compute returns the canonical fingerprint of q. It is safe for
// concurrent use and allocates nothing in steady state (scratch buffers
// are pooled). The result is never zero, so zero can mean "unset" in
// QueryOptions and wide events.
func Compute(q *graph.Graph) Fingerprint {
	n := q.NumVertices()
	if n == 0 {
		return Fingerprint(mix64(fpSeed))
	}
	s := fpPool.Get().(*fpScratch)
	s.grow(n)

	// Round 0: (label, degree) — the degree-sequence + label-multiset base
	// partition.
	for v := 0; v < n; v++ {
		vid := graph.VertexID(v)
		s.cur[v] = mix64(uint64(q.Label(vid))<<24 ^ uint64(q.Degree(vid)) ^ fpSeed)
	}

	// Refinement: color(v) <- h(color(v), sorted colors of N(v)). The sort
	// makes the update independent of neighbor-list order, hence of vertex
	// numbering.
	for round := 0; round < fpRounds; round++ {
		for v := 0; v < n; v++ {
			nbrs := q.Neighbors(graph.VertexID(v))
			buf := s.buf[:0]
			for _, w := range nbrs {
				buf = append(buf, s.cur[w])
			}
			slices.Sort(buf)
			h := mix64(s.cur[v] ^ 0xff51afd7ed558ccd)
			for _, c := range buf {
				h = mix64(h ^ c)
			}
			s.next[v] = h
		}
		s.cur, s.next = s.next, s.cur
	}

	// Fold the sorted final colors with the graph's size signature.
	final := s.buf[:n]
	copy(final, s.cur)
	slices.Sort(final)
	h := mix64(uint64(n)<<32 ^ uint64(q.NumEdges()) ^ fpSeed)
	for _, c := range final {
		h = mix64(h ^ c)
	}
	fpPool.Put(s)
	if h == 0 {
		h = 1 // reserve 0 for "unset"
	}
	return Fingerprint(h)
}
