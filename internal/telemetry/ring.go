package telemetry

import (
	"sync"
	"time"
)

// DebugEvent is one operational incident worth keeping for /debug/events:
// an admission shed, a recovered panic — the things an operator greps for
// first when a dashboard spikes.
type DebugEvent struct {
	// Time is when the incident happened.
	Time time.Time `json:"time"`
	// Kind classifies the incident ("shed", "queue_timeout", "client_gone",
	// "handler_panic", "query_panic", ...).
	Kind string `json:"kind"`
	// Fingerprint identifies the query shape involved, when known.
	Fingerprint Fingerprint `json:"fingerprint,omitempty"`
	// Engine is the engine configuration involved, when known.
	Engine string `json:"engine,omitempty"`
	// Status is the HTTP status returned to the client, when the incident
	// maps to a request (429 for sheds, 408 for abandoned queue waits).
	Status int `json:"status,omitempty"`
	// Message carries incident detail (panic values, shed reasons).
	Message string `json:"message,omitempty"`
}

// DebugRing is a bounded, concurrency-safe ring of recent DebugEvents —
// the same shape as the slow-query log: cheap to append, newest-first to
// read, old entries silently displaced. A nil *DebugRing is a no-op.
type DebugRing struct {
	mu      sync.Mutex
	entries []DebugEvent
	next    int
	full    bool
	total   int64
}

// DefaultDebugRingSize is the ring capacity when none is given.
const DefaultDebugRingSize = 128

// NewDebugRing returns a ring keeping the most recent size events
// (<= 0 selects DefaultDebugRingSize).
func NewDebugRing(size int) *DebugRing {
	if size <= 0 {
		size = DefaultDebugRingSize
	}
	return &DebugRing{entries: make([]DebugEvent, size)}
}

// Offer appends one event, displacing the oldest when full. Safe on nil.
func (r *DebugRing) Offer(ev DebugEvent) {
	if r == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	r.mu.Lock()
	r.entries[r.next] = ev
	r.next++
	if r.next == len(r.entries) {
		r.next = 0
		r.full = true
	}
	r.total++
	r.mu.Unlock()
}

// Snapshot returns the retained events, newest first.
func (r *DebugRing) Snapshot() []DebugEvent {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.next
	if r.full {
		n = len(r.entries)
	}
	out := make([]DebugEvent, 0, n)
	for i := 0; i < n; i++ {
		idx := r.next - 1 - i
		if idx < 0 {
			idx += len(r.entries)
		}
		out = append(out, r.entries[idx])
	}
	return out
}

// Total returns how many events were ever offered (retained or displaced).
func (r *DebugRing) Total() int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}
