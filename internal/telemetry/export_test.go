package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// syncBuffer is a goroutine-safe bytes.Buffer for test sinks.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func decodeEvents(t *testing.T, data string) []Event {
	t.Helper()
	var out []Event
	sc := bufio.NewScanner(strings.NewReader(data))
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", line, err)
		}
		out = append(out, ev)
	}
	return out
}

func TestExporterAnomalousAlwaysKept(t *testing.T) {
	var buf syncBuffer
	// HealthyFraction 0: drop every healthy event by policy.
	x := NewWriterExporter(&buf, ExportConfig{HealthyFraction: 0, Buffer: 4})
	for i := 0; i < 50; i++ {
		x.Emit(Event{Fingerprint: 1, DurationUS: 10}) // healthy
		x.Emit(Event{Fingerprint: 2, DurationUS: 99, TimedOut: true})
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, buf.String())
	if len(evs) != 50 {
		t.Fatalf("exported %d events, want exactly the 50 anomalous ones", len(evs))
	}
	for _, ev := range evs {
		if !ev.Anomalous() {
			t.Fatalf("healthy event leaked through fraction=0: %+v", ev)
		}
	}
	st := x.Stats()
	if st.Exported != 50 || st.SampledOut != 50 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExporterHealthySamplingExact(t *testing.T) {
	var buf syncBuffer
	// 1-in-10 deterministic sampling.
	x := NewWriterExporter(&buf, ExportConfig{HealthyFraction: 0.1, Buffer: 256})
	for i := 0; i < 100; i++ {
		x.Emit(Event{Fingerprint: 7, DurationUS: int64(i)})
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, buf.String())
	if len(evs) != 10 {
		t.Fatalf("exported %d healthy events, want exactly 10 (1-in-10 of 100)", len(evs))
	}
	st := x.Stats()
	if st.SampledOut != 90 || st.Dropped != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExporterFractionOneKeepsAll(t *testing.T) {
	var buf syncBuffer
	x := NewWriterExporter(&buf, ExportConfig{HealthyFraction: 1, Buffer: 256})
	for i := 0; i < 25; i++ {
		x.Emit(Event{Fingerprint: 9, DurationUS: 1})
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if evs := decodeEvents(t, buf.String()); len(evs) != 25 {
		t.Fatalf("exported %d, want 25", len(evs))
	}
}

// blockingWriter blocks every Write until released, simulating a stuck
// sink so the ring backs up.
type blockingWriter struct {
	release chan struct{}
	buf     syncBuffer
}

func (w *blockingWriter) Write(p []byte) (int, error) {
	<-w.release
	return w.buf.Write(p)
}

func TestExporterBackpressureDropsHealthyKeepsAnomalous(t *testing.T) {
	bw := &blockingWriter{release: make(chan struct{})}
	x := newExporter(&writerSink{w: bw, bw: bufio.NewWriterSize(bw, 1)}, ExportConfig{HealthyFraction: 1, Buffer: 2})

	// One event gets pulled by the writer goroutine and blocks in Write;
	// fill the 2-slot ring behind it, then overflow with healthy events.
	x.Emit(Event{Fingerprint: 1, DurationUS: 1})
	deadline := time.Now().Add(2 * time.Second)
	for x.Stats().Dropped == 0 {
		x.Emit(Event{Fingerprint: 1, DurationUS: 1})
		if time.Now().After(deadline) {
			t.Fatal("no healthy drop despite stuck sink")
		}
	}

	// An anomalous emit must wait for space, not drop: release the sink
	// shortly after and the event must land.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(bw.release)
	}()
	x.Emit(Event{Fingerprint: 2, TimedOut: true, DurationUS: 5})
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	var sawAnomalous bool
	for _, ev := range decodeEvents(t, bw.buf.String()) {
		if ev.Anomalous() {
			sawAnomalous = true
		}
	}
	if !sawAnomalous {
		t.Fatal("anomalous event lost under backpressure")
	}
	if x.Stats().Dropped == 0 {
		t.Fatal("expected healthy drops under backpressure")
	}
}

func TestExporterFileSink(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.ndjson")
	x, err := NewExporter(path, ExportConfig{HealthyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	x.Emit(Event{Fingerprint: 3, DurationUS: 42})
	x.Emit(Event{Fingerprint: 4, Error: true, DurationUS: 7})
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	evs := decodeEvents(t, string(data))
	if len(evs) != 2 {
		t.Fatalf("file has %d events, want 2", len(evs))
	}
	if evs[0].Fingerprint != 3 || evs[1].Fingerprint != 4 || !evs[1].Error {
		t.Fatalf("events = %+v", evs)
	}
}

func TestExporterEmptyDestDisabled(t *testing.T) {
	x, err := NewExporter("", ExportConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if x != nil {
		t.Fatal("empty dest must return a nil (disabled) exporter")
	}
	// Every method is a no-op on nil.
	x.Emit(Event{Fingerprint: 1})
	if st := x.Stats(); st != (ExporterStats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExporterHTTPSink(t *testing.T) {
	var mu sync.Mutex
	var body bytes.Buffer
	var posts atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if ct := r.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			t.Errorf("content type = %q", ct)
		}
		mu.Lock()
		body.ReadFrom(r.Body)
		mu.Unlock()
		posts.Add(1)
	}))
	defer srv.Close()

	x, err := NewExporter(srv.URL, ExportConfig{HealthyFraction: 1, FlushEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		x.Emit(Event{Fingerprint: Fingerprint(i + 1), DurationUS: int64(i)})
	}
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	evs := decodeEvents(t, body.String())
	mu.Unlock()
	if len(evs) != 20 {
		t.Fatalf("server received %d events, want 20", len(evs))
	}
	if posts.Load() == 0 {
		t.Fatal("no POSTs received")
	}
	if st := x.Stats(); st.SinkErrors != 0 {
		t.Fatalf("sink errors: %+v", st)
	}
}

func TestExporterHTTPSinkErrorCounted(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusInternalServerError)
	}))
	defer srv.Close()
	x, err := NewExporter(srv.URL, ExportConfig{HealthyFraction: 1})
	if err != nil {
		t.Fatal(err)
	}
	x.Emit(Event{Fingerprint: 1, Error: true})
	if err := x.Close(); err != nil {
		t.Fatal(err)
	}
	if st := x.Stats(); st.SinkErrors == 0 {
		t.Fatalf("expected sink errors, stats = %+v", st)
	}
}
