package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"subgraphquery/internal/obs"
)

// Profile is a fixed-capacity heavy-hitter sketch over query
// fingerprints: the space-saving algorithm (Metwally, Agrawal, El Abbadi,
// "Efficient Computation of Frequent and Top-k Elements in Data
// Streams"). Each tracked shape holds its count, failure tallies and a
// latency histogram; when a new shape arrives at capacity, the
// minimum-count slot is recycled and the newcomer inherits its count as
// an error bound. The guarantees that matter operationally:
//
//   - any shape with true frequency above Seen/Capacity is tracked;
//   - a slot's true count lies in [Count-ErrorBound, Count].
//
// Record is O(1) on a tracked shape (one map hit, a few adds, one
// histogram record — no allocation) and O(capacity) only when an
// untracked shape evicts, which a stable workload stops doing once its
// heavy hitters are resident. All methods are safe for concurrent use
// and on a nil *Profile (no-ops).
type Profile struct {
	mu        sync.Mutex
	capacity  int
	slots     map[Fingerprint]*shapeSlot
	seen      int64
	evictions int64
}

// shapeSlot is one tracked shape. The latency histogram is embedded by
// value so a slot is a single allocation, recycled on eviction.
type shapeSlot struct {
	fp    Fingerprint
	shape string // "8v/10e", set when first observed with a size

	count    int64
	errBound int64 // space-saving overestimation bound

	errors    int64 // engine-level failures (Event.Error)
	sheds     int64 // admission bounces (Event.Shed)
	timeouts  int64 // TimedOut && !Cancelled
	cancelled int64
	skipped   int64 // sum of skipped graphs
	panics    int64 // sum of panic counts

	lat obs.Histogram // executed queries only (sheds never ran)
}

func (s *shapeSlot) recycle(fp Fingerprint, bound int64) {
	s.fp = fp
	s.shape = ""
	s.count = bound
	s.errBound = bound
	s.errors, s.sheds, s.timeouts, s.cancelled, s.skipped, s.panics = 0, 0, 0, 0, 0, 0
	s.lat.Reset()
}

// DefaultProfileCapacity is the sketch capacity when none is given: big
// enough that every query set of the paper's workloads is resident, small
// enough that a scan of the slots (eviction, snapshot) is trivial.
const DefaultProfileCapacity = 64

// NewProfile returns a sketch tracking at most capacity shapes
// (<= 0 selects DefaultProfileCapacity).
func NewProfile(capacity int) *Profile {
	if capacity <= 0 {
		capacity = DefaultProfileCapacity
	}
	return &Profile{
		capacity: capacity,
		slots:    make(map[Fingerprint]*shapeSlot, capacity),
	}
}

// Record folds one query's wide event into the sketch.
func (p *Profile) Record(ev Event) {
	if p == nil || ev.Fingerprint == 0 {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.seen++
	s, ok := p.slots[ev.Fingerprint]
	if !ok {
		if len(p.slots) < p.capacity {
			s = &shapeSlot{fp: ev.Fingerprint}
		} else {
			// Space-saving replacement: evict the minimum-count slot; the
			// newcomer inherits its count as the overestimation bound.
			var min *shapeSlot
			for _, c := range p.slots {
				if min == nil || c.count < min.count {
					min = c
				}
			}
			delete(p.slots, min.fp)
			p.evictions++
			min.recycle(ev.Fingerprint, min.count)
			s = min
		}
		p.slots[ev.Fingerprint] = s
	}
	s.count++
	if s.shape == "" && ev.QueryVertices > 0 {
		// One formatting allocation per newly tracked shape, never per
		// query.
		s.shape = fmt.Sprintf("%dv/%de", ev.QueryVertices, ev.QueryEdges)
	}
	if ev.Error {
		s.errors++
	}
	switch {
	case ev.Shed():
		s.sheds++
	default:
		s.lat.Record(time.Duration(ev.DurationUS) * time.Microsecond)
	}
	if ev.TimedOut && !ev.Cancelled {
		s.timeouts++
	}
	if ev.Cancelled {
		s.cancelled++
	}
	s.skipped += int64(ev.Skipped)
	s.panics += int64(ev.Panics)
}

// ShapeSnapshot is one tracked shape in a profile snapshot, ordered by
// count.
type ShapeSnapshot struct {
	Fingerprint string `json:"fingerprint"`
	Shape       string `json:"shape,omitempty"`
	// Count is the space-saving estimate; the true count lies within
	// [Count-ErrorBound, Count].
	Count      int64 `json:"count"`
	ErrorBound int64 `json:"error_bound,omitempty"`

	Errors    int64 `json:"errors,omitempty"`
	Sheds     int64 `json:"sheds,omitempty"`
	Timeouts  int64 `json:"timeouts,omitempty"`
	Cancelled int64 `json:"cancelled,omitempty"`
	Skipped   int64 `json:"skipped,omitempty"`
	Panics    int64 `json:"panics,omitempty"`

	Latency obs.HistogramSnapshot `json:"latency"`
}

// ProfileSnapshot is the JSON body of /debug/top.
type ProfileSnapshot struct {
	Capacity int `json:"capacity"`
	// Tracked is the number of resident shapes; Seen counts every event
	// folded in; Evictions counts space-saving replacements (0 means every
	// shape ever seen is still resident and all counts are exact).
	Tracked   int   `json:"tracked"`
	Seen      int64 `json:"seen"`
	Evictions int64 `json:"evictions"`
	// Top lists the k highest-count shapes, descending.
	Top []ShapeSnapshot `json:"top"`
}

// Snapshot returns the k highest-count shapes (k <= 0 means all tracked).
func (p *Profile) Snapshot(k int) ProfileSnapshot {
	if p == nil {
		return ProfileSnapshot{}
	}
	p.mu.Lock()
	snap := ProfileSnapshot{
		Capacity:  p.capacity,
		Tracked:   len(p.slots),
		Seen:      p.seen,
		Evictions: p.evictions,
		Top:       make([]ShapeSnapshot, 0, len(p.slots)),
	}
	for _, s := range p.slots {
		snap.Top = append(snap.Top, ShapeSnapshot{
			Fingerprint: s.fp.String(),
			Shape:       s.shape,
			Count:       s.count,
			ErrorBound:  s.errBound,
			Errors:      s.errors,
			Sheds:       s.sheds,
			Timeouts:    s.timeouts,
			Cancelled:   s.cancelled,
			Skipped:     s.skipped,
			Panics:      s.panics,
			Latency:     s.lat.Snapshot(),
		})
	}
	p.mu.Unlock()
	sort.Slice(snap.Top, func(i, j int) bool {
		if snap.Top[i].Count != snap.Top[j].Count {
			return snap.Top[i].Count > snap.Top[j].Count
		}
		return snap.Top[i].Fingerprint < snap.Top[j].Fingerprint
	})
	if k > 0 && len(snap.Top) > k {
		snap.Top = snap.Top[:k]
	}
	return snap
}

// Stats returns the sketch's occupancy counters for /metrics folding.
func (p *Profile) Stats() (tracked int, seen, evictions int64) {
	if p == nil {
		return 0, 0, 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.slots), p.seen, p.evictions
}
