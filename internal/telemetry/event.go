package telemetry

// Admission verdicts recorded on wide events. An empty Verdict means
// admission control was disabled for the request (treated as admitted).
const (
	// VerdictOK: the query was admitted and executed.
	VerdictOK = "ok"
	// VerdictShed: the wait queue was full on arrival — shed with 429.
	VerdictShed = "shed"
	// VerdictQueueTimeout: queued, but no slot freed in time — shed with
	// 429.
	VerdictQueueTimeout = "queue_timeout"
	// VerdictClientGone: the client disconnected while queued — 408.
	VerdictClientGone = "client_gone"
)

// Event is the wide-event record of one query: everything the serving
// layer knows about it, flattened into one bounded, pointer-free struct.
// Building one is a stack operation — no allocation — so the fast path
// can construct an Event per query unconditionally and let the tail
// sampler decide whether anyone pays to keep it.
//
// Field semantics follow core.Result and the admission verdicts; zero
// values marshal away (omitempty) so healthy events stay small on the
// wire.
type Event struct {
	// TimeUnixMS is the query's start time.
	TimeUnixMS int64 `json:"time_unix_ms"`
	// Fingerprint is the canonical query-shape hash (hex-encoded in JSON).
	Fingerprint Fingerprint `json:"fingerprint"`
	// Engine is the engine configuration that ran (or would have run) the
	// query.
	Engine string `json:"engine,omitempty"`
	// QueryVertices/QueryEdges describe the query's size (the slow log's
	// "8v/10e" shape, split so aggregators need not parse strings).
	QueryVertices int `json:"query_vertices,omitempty"`
	QueryEdges    int `json:"query_edges,omitempty"`

	// Verdict is the admission outcome (VerdictOK, VerdictShed, ...);
	// empty when admission control is disabled.
	Verdict string `json:"verdict,omitempty"`

	// DurationUS is wall-clock latency; FilterUS/VerifyUS are the engine's
	// phase times (zero for shed queries, which never execute).
	DurationUS int64 `json:"duration_us"`
	FilterUS   int64 `json:"filter_us,omitempty"`
	VerifyUS   int64 `json:"verify_us,omitempty"`

	// Candidates and Answers are |C(q)| and |A(q)| from the Result.
	Candidates int `json:"candidates,omitempty"`
	Answers    int `json:"answers,omitempty"`

	// Skipped counts data graphs abandoned mid-query (panic or memory
	// budget); Panics counts the panic-kind subset plus any engine-level
	// panic; Budget counts the memory-budget subset.
	Skipped int `json:"skipped,omitempty"`
	Panics  int `json:"panics,omitempty"`
	Budget  int `json:"budget,omitempty"`

	// TimedOut/Cancelled mirror the Result flags; Error marks an
	// engine-level failure (Result.Err != nil).
	TimedOut  bool `json:"timed_out,omitempty"`
	Cancelled bool `json:"cancelled,omitempty"`
	Error     bool `json:"error,omitempty"`

	// CacheHit marks a result-cache hit (informational, not anomalous).
	CacheHit bool `json:"cache_hit,omitempty"`

	// Watchdog marks an event emitted by the stuck-query watchdog: the
	// query was still running when its age exceeded the stuck threshold.
	// Watchdog events describe a query in flight, not a completed one, so
	// duration and answer fields are the progress so far.
	Watchdog bool `json:"watchdog,omitempty"`
}

// Shed reports whether the event records a query bounced by admission
// control rather than executed.
func (e Event) Shed() bool {
	switch e.Verdict {
	case VerdictShed, VerdictQueueTimeout, VerdictClientGone:
		return true
	}
	return false
}

// Anomalous classifies the event for tail sampling: anomalous events are
// always retained by the exporter and tallied as failures by the profile.
// A query is anomalous when anything other than a clean, complete answer
// happened: engine error, timeout, cancellation, skipped graphs, panics,
// an admission shed, or a watchdog flag.
func (e Event) Anomalous() bool {
	return e.Error || e.TimedOut || e.Cancelled ||
		e.Skipped > 0 || e.Panics > 0 || e.Shed() || e.Watchdog
}
