package telemetry

import (
	"math/rand"
	"sync"
	"testing"
)

func healthyEvent(fp Fingerprint, durUS int64) Event {
	return Event{Fingerprint: fp, QueryVertices: 4, QueryEdges: 5, DurationUS: durUS, Verdict: VerdictOK}
}

func TestProfileBasics(t *testing.T) {
	p := NewProfile(8)
	for i := 0; i < 10; i++ {
		p.Record(healthyEvent(1, 100))
	}
	for i := 0; i < 3; i++ {
		p.Record(healthyEvent(2, 200))
	}
	p.Record(Event{Fingerprint: 2, DurationUS: 50, Error: true})
	p.Record(Event{Fingerprint: 3, Verdict: VerdictShed})
	p.Record(Event{}) // fingerprint 0 ignored

	snap := p.Snapshot(0)
	if snap.Seen != 15 {
		t.Fatalf("seen = %d, want 15", snap.Seen)
	}
	if snap.Tracked != 3 {
		t.Fatalf("tracked = %d, want 3", snap.Tracked)
	}
	if snap.Evictions != 0 {
		t.Fatalf("evictions = %d, want 0", snap.Evictions)
	}
	top := snap.Top
	if top[0].Fingerprint != Fingerprint(1).String() || top[0].Count != 10 {
		t.Fatalf("top[0] = %+v", top[0])
	}
	if top[1].Count != 4 || top[1].Errors != 1 {
		t.Fatalf("top[1] = %+v", top[1])
	}
	if top[0].Shape != "4v/5e" {
		t.Fatalf("shape = %q", top[0].Shape)
	}
	if top[0].Latency.Count != 10 {
		t.Fatalf("latency count = %d", top[0].Latency.Count)
	}
	// Shed-only shape: tallied, but no latency samples (it never ran).
	if top[2].Sheds != 1 || top[2].Latency.Count != 0 {
		t.Fatalf("shed slot = %+v", top[2])
	}

	// k truncation.
	if got := len(p.Snapshot(2).Top); got != 2 {
		t.Fatalf("Snapshot(2) returned %d rows", got)
	}
}

// TestProfileSpaceSavingBounds drives a skewed workload through an
// undersized sketch and checks the algorithm's guarantees: every heavy
// hitter is tracked, and each slot's true count lies within
// [Count-ErrorBound, Count].
func TestProfileSpaceSavingBounds(t *testing.T) {
	const capacity = 16
	p := NewProfile(capacity)
	rng := rand.New(rand.NewSource(7))
	truth := map[Fingerprint]int64{}
	const total = 20000
	for i := 0; i < total; i++ {
		// Zipf-ish: shape k with probability ~ 1/(k+1).
		var fp Fingerprint
		r := rng.Float64()
		switch {
		case r < 0.30:
			fp = 1
		case r < 0.50:
			fp = 2
		case r < 0.62:
			fp = 3
		case r < 0.70:
			fp = 4
		default:
			fp = Fingerprint(5 + rng.Intn(200)) // long tail
		}
		truth[fp]++
		p.Record(healthyEvent(fp, 100))
	}
	snap := p.Snapshot(0)
	if snap.Tracked != capacity {
		t.Fatalf("tracked = %d, want %d", snap.Tracked, capacity)
	}
	if snap.Evictions == 0 {
		t.Fatal("expected evictions with 200+ shapes in a 16-slot sketch")
	}
	// Any shape with frequency > Seen/capacity must be resident.
	resident := map[string]ShapeSnapshot{}
	for _, s := range snap.Top {
		resident[s.Fingerprint] = s
	}
	threshold := total / capacity
	for fp, n := range truth {
		if n > int64(threshold) {
			if _, ok := resident[fp.String()]; !ok {
				t.Fatalf("heavy hitter %s (count %d > %d) not tracked", fp, n, threshold)
			}
		}
	}
	// Error bounds: truth in [Count-ErrorBound, Count].
	for _, s := range snap.Top {
		fp, err := ParseFingerprint(s.Fingerprint)
		if err != nil {
			t.Fatal(err)
		}
		n := truth[fp]
		if n > s.Count || n < s.Count-s.ErrorBound {
			t.Fatalf("shape %s: true count %d outside [%d, %d]",
				s.Fingerprint, n, s.Count-s.ErrorBound, s.Count)
		}
	}
	// The dominant shapes' counts must be exact-ish and ordered first.
	if snap.Top[0].Fingerprint != Fingerprint(1).String() {
		t.Fatalf("top shape = %s, want %s", snap.Top[0].Fingerprint, Fingerprint(1))
	}
}

func TestProfileNilSafe(t *testing.T) {
	var p *Profile
	p.Record(healthyEvent(1, 1)) // must not panic
	if s := p.Snapshot(5); s.Tracked != 0 || len(s.Top) != 0 {
		t.Fatalf("nil snapshot = %+v", s)
	}
	tracked, seen, ev := p.Stats()
	if tracked != 0 || seen != 0 || ev != 0 {
		t.Fatal("nil stats must be zero")
	}
}

func TestProfileConcurrent(t *testing.T) {
	p := NewProfile(8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				p.Record(healthyEvent(Fingerprint(1+(w+i)%20), int64(i%500)))
				if i%64 == 0 {
					p.Snapshot(4)
				}
			}
		}(w)
	}
	wg.Wait()
	if _, seen, _ := p.Stats(); seen != 8000 {
		t.Fatalf("seen = %d, want 8000", seen)
	}
}
