package telemetry

import (
	"testing"

	"subgraphquery/internal/graph"
)

// TestComputeZeroAlloc: fingerprinting is on every query's path, so after
// the pooled scratch warms up it must not allocate.
func TestComputeZeroAlloc(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool drops items at random under the race detector; zero-alloc contract is for production builds")
	}
	q := graph.MustFromEdges(
		[]graph.Label{0, 1, 2, 1, 0, 3},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 5}, {U: 5, V: 0}, {U: 1, V: 4}},
	)
	Compute(q) // warm the pool
	if allocs := testing.AllocsPerRun(100, func() { Compute(q) }); allocs != 0 {
		t.Fatalf("Compute allocated %v times per run, want 0", allocs)
	}
}

// TestRecordFastPathZeroAlloc: with export disabled (nil exporter) and
// the shape already tracked, the full per-query telemetry fast path —
// build an Event, Profile.Record, Exporter.Emit — must be allocation-free.
func TestRecordFastPathZeroAlloc(t *testing.T) {
	p := NewProfile(8)
	var x *Exporter // export disabled
	ev := Event{Fingerprint: 42, QueryVertices: 4, QueryEdges: 5, DurationUS: 123, Verdict: VerdictOK}
	p.Record(ev) // warm: slot + shape string allocated once here
	if allocs := testing.AllocsPerRun(100, func() {
		e := Event{
			Fingerprint:   42,
			QueryVertices: 4,
			QueryEdges:    5,
			DurationUS:    123,
			Verdict:       VerdictOK,
			Candidates:    10,
			Answers:       2,
		}
		p.Record(e)
		x.Emit(e)
	}); allocs != 0 {
		t.Fatalf("record fast path allocated %v times per run, want 0", allocs)
	}
}

// TestEmitSampledOutZeroAlloc: even with export enabled, a healthy event
// that the sampler discards must cost nothing.
func TestEmitSampledOutZeroAlloc(t *testing.T) {
	var buf syncBuffer
	x := NewWriterExporter(&buf, ExportConfig{HealthyFraction: 0, Buffer: 4})
	defer x.Close()
	ev := Event{Fingerprint: 7, DurationUS: 9, Verdict: VerdictOK}
	if allocs := testing.AllocsPerRun(100, func() { x.Emit(ev) }); allocs != 0 {
		t.Fatalf("sampled-out Emit allocated %v times per run, want 0", allocs)
	}
}
