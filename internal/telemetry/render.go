package telemetry

import (
	"fmt"
	"io"
)

// WriteTop renders a profile snapshot as an aligned text table — the
// ?format=text body of /debug/top and the output of sqtop. One row per
// shape: fingerprint, shape, count (±error bound), latency quantiles, and
// the failure tallies that make a shape worth investigating.
func WriteTop(w io.Writer, snap ProfileSnapshot) error {
	if _, err := fmt.Fprintf(w, "workload profile: %d shapes tracked (capacity %d), %d queries seen, %d evictions\n",
		snap.Tracked, snap.Capacity, snap.Seen, snap.Evictions); err != nil {
		return err
	}
	if len(snap.Top) == 0 {
		_, err := fmt.Fprintln(w, "(no shapes recorded)")
		return err
	}
	if _, err := fmt.Fprintf(w, "%-4s %-16s %-8s %10s %10s %10s %10s %8s\n",
		"#", "FINGERPRINT", "SHAPE", "COUNT", "P50", "P99", "ERRORS", "SHEDS"); err != nil {
		return err
	}
	for i, s := range snap.Top {
		count := fmt.Sprintf("%d", s.Count)
		if s.ErrorBound > 0 {
			count = fmt.Sprintf("%d±%d", s.Count, s.ErrorBound)
		}
		// "errors" in the table is everything that makes a query anomalous
		// besides sheds: failures, timeouts, cancels, skips, panics.
		badness := s.Errors + s.Timeouts + s.Cancelled + s.Skipped + s.Panics
		if _, err := fmt.Fprintf(w, "%-4d %-16s %-8s %10s %10s %10s %10d %8d\n",
			i+1, s.Fingerprint, s.Shape, count,
			fmtUS(s.Latency.P50US), fmtUS(s.Latency.P99US),
			badness, s.Sheds); err != nil {
			return err
		}
	}
	return nil
}

// fmtUS renders a microsecond latency human-first: µs under a millisecond,
// fractional ms under a second, seconds beyond.
func fmtUS(us int64) string {
	switch {
	case us < 1000:
		return fmt.Sprintf("%dµs", us)
	case us < 1000000:
		return fmt.Sprintf("%.1fms", float64(us)/1000)
	default:
		return fmt.Sprintf("%.2fs", float64(us)/1e6)
	}
}
