//go:build !race

package telemetry

// raceEnabled reports whether the race detector is compiled in. Under
// race, sync.Pool deliberately drops items at random, so pool-backed
// zero-alloc assertions only hold in production builds.
const raceEnabled = false
