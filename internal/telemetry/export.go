package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync/atomic"
	"time"
)

// ExportConfig tunes an Exporter.
type ExportConfig struct {
	// HealthyFraction is the fraction of non-anomalous events exported
	// (anomalous events are always exported). 0 exports no healthy events;
	// >= 1 exports all. Sampling is deterministic — every ceil(1/f)-th
	// healthy event is kept — so tests and capacity planning see exact
	// rates rather than coin flips.
	HealthyFraction float64
	// Buffer is the event ring capacity between the fast path and the
	// writer goroutine (<= 0 selects DefaultExportBuffer). Healthy events
	// that find the ring full are dropped and counted; anomalous events
	// wait for space — tail sampling guarantees them.
	Buffer int
	// FlushEvery bounds how stale a buffered batch may get when the event
	// stream goes quiet (<= 0 selects 1s).
	FlushEvery time.Duration
}

// DefaultExportBuffer is the event ring capacity when none is given.
const DefaultExportBuffer = 1024

// ExporterStats are the exporter's backpressure and delivery counters,
// folded into /metrics by the server.
type ExporterStats struct {
	// Exported counts events handed to the sink (written to the file or
	// queued into an HTTP batch).
	Exported int64 `json:"exported"`
	// SampledOut counts healthy events the tail sampler discarded by
	// policy.
	SampledOut int64 `json:"sampled_out"`
	// Dropped counts healthy events discarded because the ring was full —
	// backpressure, not policy.
	Dropped int64 `json:"dropped"`
	// SinkErrors counts failed writes/POSTs; each loses one batch.
	SinkErrors int64 `json:"sink_errors"`
}

// Exporter ships wide events to an NDJSON sink (a file, or an HTTP
// endpoint receiving batched POST bodies) from a dedicated goroutine.
// The fast path — Emit — never blocks on I/O and never allocates: it is
// a sampling decision plus a channel send of a value struct. Tail
// sampling semantics:
//
//   - anomalous events (Event.Anomalous) are always delivered; if the
//     ring is full, Emit waits for space rather than dropping;
//   - healthy events are sampled down to HealthyFraction, and dropped
//     (counted) rather than waited for when the ring is full.
//
// All methods are safe on a nil *Exporter (no-ops), so "export disabled"
// costs one branch on the fast path.
type Exporter struct {
	ch   chan Event
	quit chan struct{} // closed by Close: stop accepting, drain, flush
	done chan struct{} // closed by the writer goroutine on exit

	healthyEvery uint64 // keep 1 of every N healthy events; 0 = none
	healthySeen  atomic.Uint64

	exported   atomic.Int64
	sampledOut atomic.Int64
	dropped    atomic.Int64
	sinkErrors atomic.Int64

	sink sink
}

// sink is one NDJSON destination; write receives complete NDJSON lines.
type sink interface {
	write(line []byte) error
	flush() error
	close() error
}

// NewExporter opens the sink named by dest — an http:// or https:// URL
// (batched POSTs of NDJSON, Content-Type application/x-ndjson) or a file
// path (appended, one JSON object per line) — and starts the writer
// goroutine. An empty dest returns (nil, nil): a nil *Exporter is the
// disabled exporter.
func NewExporter(dest string, cfg ExportConfig) (*Exporter, error) {
	if dest == "" {
		return nil, nil
	}
	if strings.HasPrefix(dest, "http://") || strings.HasPrefix(dest, "https://") {
		return newExporter(&httpSink{url: dest, client: http.DefaultClient}, cfg), nil
	}
	f, err := os.OpenFile(dest, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("telemetry: opening export file: %w", err)
	}
	return NewWriterExporter(f, cfg), nil
}

// NewWriterExporter exports to an arbitrary writer (tests, stdout). If w
// is an io.Closer it is closed by Close.
func NewWriterExporter(w io.Writer, cfg ExportConfig) *Exporter {
	return newExporter(&writerSink{w: w, bw: bufio.NewWriter(w)}, cfg)
}

func newExporter(s sink, cfg ExportConfig) *Exporter {
	buffer := cfg.Buffer
	if buffer <= 0 {
		buffer = DefaultExportBuffer
	}
	flushEvery := cfg.FlushEvery
	if flushEvery <= 0 {
		flushEvery = time.Second
	}
	var every uint64
	if cfg.HealthyFraction > 0 {
		if cfg.HealthyFraction >= 1 {
			every = 1
		} else {
			every = uint64(1/cfg.HealthyFraction + 0.5)
			if every == 0 {
				every = 1
			}
		}
	}
	x := &Exporter{
		ch:           make(chan Event, buffer),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		healthyEvery: every,
		sink:         s,
	}
	go x.run(flushEvery)
	return x
}

// Emit submits one event. Anomalous events are delivered unless the
// exporter is shutting down; healthy events are sampled and lossy under
// backpressure. Safe on nil.
func (x *Exporter) Emit(ev Event) {
	if x == nil {
		return
	}
	if !ev.Anomalous() {
		if x.healthyEvery == 0 {
			x.sampledOut.Add(1)
			return
		}
		if x.healthyEvery > 1 && x.healthySeen.Add(1)%x.healthyEvery != 0 {
			x.sampledOut.Add(1)
			return
		}
		select {
		case x.ch <- ev:
		default:
			x.dropped.Add(1)
		}
		return
	}
	// Anomalous: wait for ring space — these are the events postmortems
	// need, and the writer goroutine is always draining.
	select {
	case x.ch <- ev:
	case <-x.quit:
		x.dropped.Add(1)
	}
}

// Stats returns the delivery counters.
func (x *Exporter) Stats() ExporterStats {
	if x == nil {
		return ExporterStats{}
	}
	return ExporterStats{
		Exported:   x.exported.Load(),
		SampledOut: x.sampledOut.Load(),
		Dropped:    x.dropped.Load(),
		SinkErrors: x.sinkErrors.Load(),
	}
}

// Close stops the exporter: buffered events are drained and flushed, the
// sink is closed. Events emitted after Close may be dropped (counted).
// Safe on nil and idempotent-enough for shutdown paths (second close of
// quit would panic; callers own the single Close, as main does).
func (x *Exporter) Close() error {
	if x == nil {
		return nil
	}
	close(x.quit)
	<-x.done
	return x.sink.close()
}

// run is the writer goroutine: encode, write, flush when idle. A sink
// panic must not take down the process (export is telemetry, never
// load-bearing), so the loop carries a recover that degrades the
// exporter to counting errors.
func (x *Exporter) run(flushEvery time.Duration) {
	defer close(x.done)
	defer func() {
		if v := recover(); v != nil {
			x.sinkErrors.Add(1)
			// Keep draining so Emit never blocks forever on a dead writer.
			for {
				select {
				case <-x.ch:
					x.dropped.Add(1)
				case <-x.quit:
					return
				}
			}
		}
	}()
	ticker := time.NewTicker(flushEvery)
	defer ticker.Stop()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	writeOne := func(ev Event) {
		buf.Reset()
		if err := enc.Encode(ev); err != nil {
			x.sinkErrors.Add(1)
			return
		}
		if err := x.sink.write(buf.Bytes()); err != nil {
			x.sinkErrors.Add(1)
			return
		}
		x.exported.Add(1)
	}
	flush := func() {
		if err := x.sink.flush(); err != nil {
			x.sinkErrors.Add(1)
		}
	}
	for {
		select {
		case ev := <-x.ch:
			writeOne(ev)
			if len(x.ch) == 0 {
				flush()
			}
		case <-ticker.C:
			flush()
		case <-x.quit:
			for {
				select {
				case ev := <-x.ch:
					writeOne(ev)
				default:
					flush()
					return
				}
			}
		}
	}
}

// writerSink appends NDJSON lines to one writer through a buffer.
type writerSink struct {
	w  io.Writer
	bw *bufio.Writer
}

func (s *writerSink) write(line []byte) error { _, err := s.bw.Write(line); return err }
func (s *writerSink) flush() error            { return s.bw.Flush() }
func (s *writerSink) close() error {
	err := s.bw.Flush()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// httpSink batches NDJSON lines and POSTs them. A failed POST drops the
// batch (counted by the caller via the returned error) — the export
// stream is lossy-by-design under a broken collector, never a memory
// leak.
type httpSink struct {
	url    string
	client *http.Client
	batch  bytes.Buffer
	lines  int
}

// httpBatchLines bounds a POST body; a flush is forced when reached.
const httpBatchLines = 256

func (s *httpSink) write(line []byte) error {
	s.batch.Write(line)
	s.lines++
	if s.lines >= httpBatchLines {
		return s.flush()
	}
	return nil
}

func (s *httpSink) flush() error {
	if s.lines == 0 {
		return nil
	}
	body := make([]byte, s.batch.Len())
	copy(body, s.batch.Bytes())
	s.batch.Reset()
	s.lines = 0
	resp, err := s.client.Post(s.url, "application/x-ndjson", bytes.NewReader(body))
	if err != nil {
		return err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode >= 300 {
		return fmt.Errorf("telemetry: export POST: status %d", resp.StatusCode)
	}
	return nil
}

func (s *httpSink) close() error { return s.flush() }
