package budget

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestZeroCheckpointNeverStops(t *testing.T) {
	var c Checkpoint
	for i := 0; i < 3*StepStride; i++ {
		if c.Tick() {
			t.Fatalf("zero checkpoint stopped at tick %d", i)
		}
	}
	if c.Exceeded() {
		t.Fatal("zero checkpoint reports Exceeded")
	}
}

func TestTickHonorsDeadlineAtStride(t *testing.T) {
	c := Checkpoint{Deadline: time.Now().Add(-time.Second), Stride: 8}
	stopped := -1
	for i := 0; i < 64; i++ {
		if c.Tick() {
			stopped = i
			break
		}
	}
	if stopped != 7 {
		t.Fatalf("expired deadline noticed at tick %d, want 7 (stride-1)", stopped)
	}
}

func TestTickHonorsCancel(t *testing.T) {
	cancel := make(chan struct{})
	c := Checkpoint{Cancel: cancel, Stride: 4}
	for i := 0; i < 16; i++ {
		if c.Tick() {
			t.Fatalf("open cancel channel stopped the loop at tick %d", i)
		}
	}
	close(cancel)
	stopped := false
	for i := 0; i < 4; i++ {
		if c.Tick() {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Fatal("closed cancel channel never stopped the loop within one stride")
	}
}

func TestDefaultStride(t *testing.T) {
	c := Checkpoint{Deadline: time.Now().Add(-time.Second)}
	for i := 1; i < StepStride; i++ {
		if c.Tick() {
			t.Fatalf("default stride polled early at tick %d", i)
		}
	}
	if !c.Tick() {
		t.Fatalf("default stride did not poll at tick %d", StepStride)
	}
}

func TestExceededBypassesStride(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	c := Checkpoint{Cancel: cancel, Stride: 1 << 20}
	if !c.Exceeded() {
		t.Fatal("Exceeded ignored a closed cancel channel")
	}
}

func TestProgressFlushedAtStride(t *testing.T) {
	var p atomic.Uint64
	c := Checkpoint{Stride: 8, Progress: &p}
	for i := 1; i <= 7; i++ {
		c.Tick()
		if p.Load() != 0 {
			t.Fatalf("progress flushed early at tick %d: %d", i, p.Load())
		}
	}
	c.Tick()
	if p.Load() != 8 {
		t.Fatalf("progress after one stride = %d, want 8", p.Load())
	}
	for i := 0; i < 24; i++ {
		c.Tick()
	}
	if p.Load() != 32 {
		t.Fatalf("progress after 32 ticks = %d, want 32", p.Load())
	}
}

func TestProgressNilIsFree(t *testing.T) {
	c := Checkpoint{Stride: 2}
	if avg := testing.AllocsPerRun(1000, func() { c.Tick() }); avg != 0 {
		t.Fatalf("Tick with nil Progress allocates %.1f/op", avg)
	}
}

func TestCancelled(t *testing.T) {
	if Cancelled(nil) {
		t.Fatal("nil channel reports cancelled")
	}
	ch := make(chan struct{})
	if Cancelled(ch) {
		t.Fatal("open channel reports cancelled")
	}
	close(ch)
	if !Cancelled(ch) {
		t.Fatal("closed channel not reported cancelled")
	}
}
