package budget

import (
	"testing"
	"time"
)

func TestZeroCheckpointNeverStops(t *testing.T) {
	var c Checkpoint
	for i := 0; i < 3*StepStride; i++ {
		if c.Tick() {
			t.Fatalf("zero checkpoint stopped at tick %d", i)
		}
	}
	if c.Exceeded() {
		t.Fatal("zero checkpoint reports Exceeded")
	}
}

func TestTickHonorsDeadlineAtStride(t *testing.T) {
	c := Checkpoint{Deadline: time.Now().Add(-time.Second), Stride: 8}
	stopped := -1
	for i := 0; i < 64; i++ {
		if c.Tick() {
			stopped = i
			break
		}
	}
	if stopped != 7 {
		t.Fatalf("expired deadline noticed at tick %d, want 7 (stride-1)", stopped)
	}
}

func TestTickHonorsCancel(t *testing.T) {
	cancel := make(chan struct{})
	c := Checkpoint{Cancel: cancel, Stride: 4}
	for i := 0; i < 16; i++ {
		if c.Tick() {
			t.Fatalf("open cancel channel stopped the loop at tick %d", i)
		}
	}
	close(cancel)
	stopped := false
	for i := 0; i < 4; i++ {
		if c.Tick() {
			stopped = true
			break
		}
	}
	if !stopped {
		t.Fatal("closed cancel channel never stopped the loop within one stride")
	}
}

func TestDefaultStride(t *testing.T) {
	c := Checkpoint{Deadline: time.Now().Add(-time.Second)}
	for i := 1; i < StepStride; i++ {
		if c.Tick() {
			t.Fatalf("default stride polled early at tick %d", i)
		}
	}
	if !c.Tick() {
		t.Fatalf("default stride did not poll at tick %d", StepStride)
	}
}

func TestExceededBypassesStride(t *testing.T) {
	cancel := make(chan struct{})
	close(cancel)
	c := Checkpoint{Cancel: cancel, Stride: 1 << 20}
	if !c.Exceeded() {
		t.Fatal("Exceeded ignored a closed cancel channel")
	}
}

func TestCancelled(t *testing.T) {
	if Cancelled(nil) {
		t.Fatal("nil channel reports cancelled")
	}
	ch := make(chan struct{})
	if Cancelled(ch) {
		t.Fatal("open channel reports cancelled")
	}
	close(ch)
	if !Cancelled(ch) {
		t.Fatal("closed channel not reported cancelled")
	}
}
