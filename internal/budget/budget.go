// Package budget is the shared work-bounding substrate of the query
// system: a deadline + cancellation checkpoint polled at a fixed stride
// from every long-running loop.
//
// Before this package each loop rolled its own polling — `v%256` between
// TurboIso candidate regions, `steps%4096` in the enumeration search,
// `features%8192` in the index feature miners — and none of them could
// observe a caller-side cancellation at all. Checkpoint unifies the
// pattern: one increment-and-mask per unit of work, with the time syscall
// and the channel poll amortized over the stride, so adding cooperative
// cancellation costs nothing measurable on the hot path (the bench gate
// in scripts/benchdiff.sh holds it to the usual ≤15% p50 threshold).
//
// The strides are powers of two chosen per workload granularity:
//
//   - GraphStride (256) between per-data-graph units of work, where each
//     unit is already substantial;
//   - StepStride (4096) inside recursive search, where a unit is one
//     search-tree node;
//   - FeatureStride (8192) inside index feature mining, where a unit is
//     one enumerated feature instance.
package budget

import (
	"sync/atomic"
	"time"
)

// Polling strides. Powers of two so the modulo compiles to a mask.
const (
	// GraphStride is the polling stride for loops whose unit of work is
	// one data graph or candidate region.
	GraphStride = 256
	// StepStride is the polling stride for recursive search steps; with
	// typical step costs in the tens of nanoseconds the overshoot past a
	// deadline stays well under a millisecond.
	StepStride = 4096
	// FeatureStride is the polling stride for index feature enumeration.
	FeatureStride = 8192
)

// Checkpoint bounds a loop by wall-clock deadline and cooperative
// cancellation. The zero value never stops anything. A Checkpoint belongs
// to one goroutine; concurrent loops each carry their own.
type Checkpoint struct {
	// Deadline stops the work when exceeded; the zero time disables the
	// check.
	Deadline time.Time
	// Cancel stops the work when closed; context-compatible (pass
	// ctx.Done()). nil disables the check.
	Cancel <-chan struct{}
	// Stride is how many Tick calls share one real deadline/cancel poll;
	// 0 selects StepStride.
	Stride uint64
	// Progress, when non-nil, receives the tick count in stride-sized
	// batches at each real poll — live progress reporting piggybacked on
	// the polls the loop already pays for, adding one atomic add per
	// stride and nothing per tick. nil disables the flush.
	Progress *atomic.Uint64

	n uint64
}

// Tick consumes one unit of work and reports whether the loop must stop:
// every Stride-th call polls the deadline and the cancel channel, all
// other calls cost one increment and one mask.
func (c *Checkpoint) Tick() bool {
	c.n++
	stride := c.Stride
	if stride == 0 {
		stride = StepStride
	}
	if c.n%stride != 0 {
		return false
	}
	if c.Progress != nil {
		c.Progress.Add(stride)
	}
	return c.Exceeded()
}

// Exceeded polls the deadline and the cancel channel immediately,
// bypassing the stride — for loop boundaries where a unit of work is
// expensive enough to always check.
func (c *Checkpoint) Exceeded() bool {
	if Cancelled(c.Cancel) {
		return true
	}
	return !c.Deadline.IsZero() && time.Now().After(c.Deadline)
}

// Cancelled reports whether the cancel channel is closed. A nil channel
// is never cancelled, so unset options poll for free.
func Cancelled(cancel <-chan struct{}) bool {
	if cancel == nil {
		return false
	}
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}
