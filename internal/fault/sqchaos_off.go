//go:build !sqchaos

package fault

// Enabled reports whether fault injection is compiled in. In normal
// builds it is constant false and both entry points are empty functions:
// the calls inline to nothing, so the injection points are free.
const Enabled = false

// Inject fires the side-effect faults (panic, latency, alloc) configured
// for the point. No-op without the sqchaos build tag.
func Inject(point string) {}

// Abort reports whether a spurious budget-exhausted fault fires at the
// point. Always false without the sqchaos build tag.
func Abort(point string) bool { return false }

// ShardDrop reports whether a transient shard-unavailability fault fires
// for the given shard at the scatter-gather transport boundary. Always
// false without the sqchaos build tag.
func ShardDrop(shard int) bool { return false }
