//go:build sqchaos

package fault

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Enabled reports whether fault injection is compiled in.
const Enabled = true

// Config sets the fault rates and shapes. The zero value injects nothing,
// so building with -tags sqchaos is inert until a test (or the SQCHAOS
// environment variable, read at process start) turns faults on.
type Config struct {
	// PanicRate, LatencyRate, AllocRate and AbortRate are per-call firing
	// probabilities in [0, 1].
	PanicRate   float64
	LatencyRate float64
	AllocRate   float64
	AbortRate   float64
	// DropRate is the per-dispatch probability that ShardDrop reports a
	// shard transiently unavailable at the scatter-gather transport
	// boundary (PointShard). The draw is seeded per shard — Seed mixed
	// with the shard id — so runs with the same seed, shard set and call
	// interleaving replay the same drop pattern on the same shards.
	DropRate float64

	// Latency is the injected sleep; 0 selects 1ms.
	Latency time.Duration
	// AllocBytes is the transient allocation spike size; 0 selects 1MiB.
	AllocBytes int

	// Points restricts injection to the named points; nil means all.
	Points map[string]bool

	// Seed makes the fault sequence deterministic for a given interleaving
	// of calls.
	Seed uint64
}

var (
	mu  sync.RWMutex
	cfg Config

	seq atomic.Uint64

	// Fired-fault counters, one per kind, for chaos-test assertions.
	panics    atomic.Uint64
	latencies atomic.Uint64
	allocs    atomic.Uint64
	aborts    atomic.Uint64
	drops     atomic.Uint64

	// allocSink keeps injected spikes reachable for one round so the
	// allocation is real, then drops them.
	allocSink atomic.Pointer[[]byte]
)

func init() {
	if env := os.Getenv("SQCHAOS"); env != "" {
		c, err := parseEnv(env)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fault: ignoring malformed SQCHAOS=%q: %v\n", env, err)
			return
		}
		Set(c)
	}
}

// Set replaces the active configuration and resets the fired counters.
func Set(c Config) {
	mu.Lock()
	cfg = c
	mu.Unlock()
	seq.Store(0)
	panics.Store(0)
	latencies.Store(0)
	allocs.Store(0)
	aborts.Store(0)
	drops.Store(0)
}

// Counts reports how many faults of each kind have fired since the last
// Set.
func Counts() (panicCount, latencyCount, allocCount, abortCount uint64) {
	return panics.Load(), latencies.Load(), allocs.Load(), aborts.Load()
}

// Drops reports how many shard-drop faults have fired since the last Set.
func Drops() uint64 { return drops.Load() }

// Inject fires the side-effect faults (latency, alloc, panic — in that
// order, so a panicking call still exercises the cheaper faults)
// configured for the point.
func Inject(point string) {
	mu.RLock()
	c := cfg
	mu.RUnlock()
	if !c.applies(point) {
		return
	}
	if c.LatencyRate > 0 && roll(c.Seed) < c.LatencyRate {
		latencies.Add(1)
		d := c.Latency
		if d == 0 {
			d = time.Millisecond
		}
		time.Sleep(d)
	}
	if c.AllocRate > 0 && roll(c.Seed) < c.AllocRate {
		allocs.Add(1)
		n := c.AllocBytes
		if n == 0 {
			n = 1 << 20
		}
		spike := make([]byte, n)
		spike[0], spike[n-1] = 1, 1
		allocSink.Store(&spike) // previous spike becomes garbage
	}
	if c.PanicRate > 0 && roll(c.Seed) < c.PanicRate {
		panics.Add(1)
		panic(&InjectedPanic{Point: point})
	}
}

// Abort reports whether a spurious budget-exhausted fault fires at the
// point.
func Abort(point string) bool {
	mu.RLock()
	c := cfg
	mu.RUnlock()
	if !c.applies(point) || c.AbortRate == 0 {
		return false
	}
	if roll(c.Seed) < c.AbortRate {
		aborts.Add(1)
		return true
	}
	return false
}

// ShardDrop reports whether a transient shard-unavailability fault fires
// for the given shard at the scatter-gather transport boundary
// (PointShard). Unlike the global roll of Inject/Abort, the draw mixes
// the shard id into the seed, so a storm with a fixed seed drops the
// same shards at the same sequence positions run after run.
func ShardDrop(shard int) bool {
	mu.RLock()
	c := cfg
	mu.RUnlock()
	if !c.applies(PointShard) || c.DropRate == 0 {
		return false
	}
	if roll(c.Seed^splitmix(uint64(shard)+1)) < c.DropRate {
		drops.Add(1)
		return true
	}
	return false
}

func (c *Config) applies(point string) bool {
	if c.Points == nil {
		return true
	}
	return c.Points[point]
}

// roll draws a deterministic pseudo-random float in [0, 1) from the
// global call sequence: splitmix64 over seed+sequence, so runs with the
// same seed and call interleaving replay the same faults without any
// locked RNG state.
func roll(seed uint64) float64 {
	z := seed + seq.Add(1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

// splitmix finalizes one value through the splitmix64 mixer, for folding
// a shard id into the seed without disturbing the global sequence.
func splitmix(x uint64) uint64 {
	x = (x + 0x9e3779b97f4a7c15)
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// parseEnv reads "panic=0.01,latency=0.02,latency_ms=5,alloc=0.01,
// abort=0.01,alloc_bytes=1048576,seed=42" into a Config.
func parseEnv(s string) (Config, error) {
	var c Config
	for _, kv := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return Config{}, fmt.Errorf("missing '=' in %q", kv)
		}
		switch key {
		case "panic", "latency", "alloc", "abort", "drop":
			rate, err := strconv.ParseFloat(val, 64)
			if err != nil {
				return Config{}, fmt.Errorf("rate %q: %w", kv, err)
			}
			switch key {
			case "panic":
				c.PanicRate = rate
			case "latency":
				c.LatencyRate = rate
			case "alloc":
				c.AllocRate = rate
			case "abort":
				c.AbortRate = rate
			case "drop":
				c.DropRate = rate
			}
		case "latency_ms":
			ms, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("latency_ms %q: %w", kv, err)
			}
			c.Latency = time.Duration(ms) * time.Millisecond
		case "alloc_bytes":
			n, err := strconv.Atoi(val)
			if err != nil {
				return Config{}, fmt.Errorf("alloc_bytes %q: %w", kv, err)
			}
			c.AllocBytes = n
		case "seed":
			seed, err := strconv.ParseUint(val, 10, 64)
			if err != nil {
				return Config{}, fmt.Errorf("seed %q: %w", kv, err)
			}
			c.Seed = seed
		default:
			return Config{}, fmt.Errorf("unknown key %q", key)
		}
	}
	return c, nil
}
