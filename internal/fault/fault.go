// Package fault is the fault-injection substrate behind the `sqchaos`
// build tag, mirroring the sqdebug invariant pattern: in normal builds
// every entry point is an empty function the compiler inlines away, so
// the injection points in the filter, ordering, enumeration and
// index-probe hot paths cost nothing (the bench gate asserts it). With
// `-tags sqchaos` the points become live and fire four fault kinds at
// configured rates:
//
//   - panic: a recoverable *InjectedPanic, exercising the engine and
//     server panic-isolation boundaries;
//   - latency: a sleep, exercising deadlines, admission queues and load
//     shedding;
//   - alloc: a transient allocation spike, exercising memory-budget
//     abort paths and GC pressure behavior;
//   - abort: a spurious budget-exhausted signal, exercising the
//     timed-out/cancelled bookkeeping without waiting for a real
//     deadline;
//   - drop: a transient shard-unavailability signal at the
//     scatter-gather transport boundary (ShardDrop, seeded per shard),
//     exercising the coordinator's retry/backoff, hedging and
//     partial-result degradation paths.
//
// The chaos test suites (make test-sqchaos) drive the points through
// whole engines and through sqserver, asserting every injected fault
// surfaces as a structured error with no crash, no goroutine leak and no
// stranded scratch arena.
package fault

// Injection point names. Each names the hot-path stage the fault fires
// in, so per-point filtering and the fired-fault counters stay readable.
const (
	// PointFilter fires at the entry of a vertex-connectivity filtering
	// pass (CFL or GraphQL preprocessing of one data graph).
	PointFilter = "matching.filter"
	// PointOrder fires at the entry of a matching-order computation.
	PointOrder = "matching.order"
	// PointEnumerate fires at the entry of a backtracking enumeration.
	PointEnumerate = "matching.enumerate"
	// PointIndexProbe fires at the entry of an index Filter probe.
	PointIndexProbe = "index.probe"
	// PointShard fires at the scatter-gather transport boundary, once per
	// per-shard subquery dispatch (internal/cluster). Inject covers
	// latency/panic/alloc at the boundary; the dedicated ShardDrop entry
	// point adds per-shard-seeded transient unavailability, the fault a
	// retry/backoff/hedging tier must absorb.
	PointShard = "cluster.shard"
)

// InjectedPanic is the value an injected panic carries, so recovery
// boundaries and chaos assertions can tell deliberate faults from real
// bugs.
type InjectedPanic struct {
	Point string
}

func (p *InjectedPanic) Error() string {
	return "fault: injected panic at " + p.Point
}
