//go:build sqdebug

package index

import (
	"strings"
	"testing"

	"subgraphquery/internal/graph"
)

// Corruption tests for the sqdebug trie assertions.

func mustPanicWith(t *testing.T, substr string, f func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("expected panic containing %q, got none", substr)
		}
		msg, ok := r.(string)
		if !ok || !strings.Contains(msg, substr) {
			t.Fatalf("panic %v does not contain %q", r, substr)
		}
	}()
	f()
}

func debugDB(t *testing.T) *graph.Database {
	t.Helper()
	g0 := graph.MustFromEdges([]graph.Label{0, 1, 2}, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	g1 := graph.MustFromEdges([]graph.Label{0, 1, 0}, []graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	return graph.NewDatabase([]*graph.Graph{g0, g1})
}

func builtGrapes(t *testing.T) *Grapes {
	t.Helper()
	ix := &Grapes{MaxPathLength: 2}
	if err := ix.Build(debugDB(t), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	return ix
}

func builtGGSX(t *testing.T) *GGSX {
	t.Helper()
	ix := &GGSX{MaxPathLength: 2}
	if err := ix.Build(debugDB(t), BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestDebugCheckGrapesAcceptsBuilt(t *testing.T) {
	debugCheckGrapes(builtGrapes(t)) // Build already ran it; must still hold
}

func TestDebugCheckGrapesUnsortedPostings(t *testing.T) {
	ix := builtGrapes(t)
	n := findGrapesNodeWithPostings(ix.root, 2)
	if n == nil {
		t.Skip("no node with two postings in fixture")
	}
	n.graphIDs[0], n.graphIDs[1] = n.graphIDs[1], n.graphIDs[0]
	mustPanicWith(t, "ascending", func() { debugCheckGrapes(ix) })
}

func TestDebugCheckGrapesCounterDrift(t *testing.T) {
	ix := builtGrapes(t)
	ix.nodes++
	mustPanicWith(t, "nodes counter", func() { debugCheckGrapes(ix) })
}

func TestDebugCheckGrapesRaggedCounts(t *testing.T) {
	ix := builtGrapes(t)
	n := findGrapesNodeWithPostings(ix.root, 1)
	if n == nil {
		t.Fatal("no node with postings in fixture")
	}
	n.counts = n.counts[:len(n.counts)-1]
	mustPanicWith(t, "counts", func() { debugCheckGrapes(ix) })
}

func TestDebugCheckGGSXAcceptsBuilt(t *testing.T) {
	debugCheckGGSX(builtGGSX(t))
}

func TestDebugCheckGGSXUnsortedPostings(t *testing.T) {
	ix := builtGGSX(t)
	n := findGGSXNodeWithPostings(ix.root, 2)
	if n == nil {
		t.Skip("no node with two postings in fixture")
	}
	n.graphIDs[0], n.graphIDs[1] = n.graphIDs[1], n.graphIDs[0]
	mustPanicWith(t, "ascending", func() { debugCheckGGSX(ix) })
}

func TestDebugCheckGGSXCounterDrift(t *testing.T) {
	ix := builtGGSX(t)
	ix.entries--
	mustPanicWith(t, "entries counter", func() { debugCheckGGSX(ix) })
}

func findGrapesNodeWithPostings(n *grapesNode, min int) *grapesNode {
	if len(n.graphIDs) >= min {
		return n
	}
	for _, c := range n.children {
		if found := findGrapesNodeWithPostings(c, min); found != nil {
			return found
		}
	}
	return nil
}

func findGGSXNodeWithPostings(n *ggsxNode, min int) *ggsxNode {
	if len(n.graphIDs) >= min {
		return n
	}
	for _, c := range n.children {
		if found := findGGSXNodeWithPostings(c, min); found != nil {
			return found
		}
	}
	return nil
}
