package index

import (
	"sort"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
)

// GIndexLite is a mining-based index in the spirit of gIndex (Yan, Yu and
// Han [37]), restricted to path features: instead of storing every
// enumerated feature (the enumeration-based approach of Grapes/GGSX), it
// *mines* the feature set, keeping a feature only if it is
//
//  1. frequent — contained in at least SupportRatio of the data graphs
//     (size-1 features are always kept so filtering stays complete), and
//  2. discriminative — its posting list is at least DiscriminativeRatio
//     times smaller than the intersection of its maximal kept
//     sub-features' posting lists (it adds real pruning power).
//
// This reproduces the mining-based row of the paper's Table II and its
// §II-B discussion: cheaper storage than exhaustive enumeration, at the
// price of a costlier, parameter-sensitive build.
type GIndexLite struct {
	// MaxPathLength is the maximum feature length in edges;
	// 0 selects DefaultMaxPathLength.
	MaxPathLength int
	// SupportRatio is the minimum fraction of data graphs containing a
	// feature for it to be mined; 0 selects 0.05.
	SupportRatio float64
	// DiscriminativeRatio γ: a feature is kept only if
	// |candidates via sub-features| ≥ γ·|D_f|; 0 selects 1.2.
	DiscriminativeRatio float64

	features  map[string][]int32 // canonical feature -> ascending graph ids
	numGraphs int
}

// Name implements Index.
func (*GIndexLite) Name() string { return "gIndex" }

func (ix *GIndexLite) maxLen() int {
	if ix.MaxPathLength <= 0 {
		return DefaultMaxPathLength
	}
	return ix.MaxPathLength
}

func (ix *GIndexLite) support() float64 {
	if ix.SupportRatio <= 0 {
		return 0.05
	}
	return ix.SupportRatio
}

func (ix *GIndexLite) gamma() float64 {
	if ix.DiscriminativeRatio <= 0 {
		return 1.2
	}
	return ix.DiscriminativeRatio
}

// Build implements Index: the mining pass enumerates all path features
// (the expensive part the paper's §II-B attributes to mining-based
// methods), computes supports, then selects frequent, discriminative
// features level by level.
func (ix *GIndexLite) Build(db *graph.Database, opts BuildOptions) error {
	ix.numGraphs = db.Len()
	// postings: feature -> sorted ids of graphs containing it.
	postings := make(map[string][]int32)
	var features int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		seen := make(map[string]bool)
		ok := enumeratePaths(db.Graph(gid), ix.maxLen(), func(labels []graph.Label) bool {
			key := pathKey(labels)
			if !seen[key] {
				seen[key] = true
				postings[key] = append(postings[key], int32(gid))
			}
			features++
			if check.Tick() {
				return false
			}
			return opts.MaxFeatures <= 0 || features <= opts.MaxFeatures
		})
		if !ok {
			return ErrBudget
		}
	}

	minSupport := int(ix.support() * float64(db.Len()))
	if minSupport < 1 {
		minSupport = 1
	}
	ix.features = make(map[string][]int32)

	// Level-by-level selection: short features first, so discriminative
	// checks can consult the already-kept sub-features.
	keys := make([]string, 0, len(postings))
	for k := range postings {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if len(keys[i]) != len(keys[j]) {
			return len(keys[i]) < len(keys[j])
		}
		return keys[i] < keys[j]
	})
	for _, key := range keys {
		ids := postings[key]
		if len(key) == 4 {
			// Size-1 features (single labels) anchor completeness.
			ix.features[key] = ids
			continue
		}
		if len(ids) < minSupport {
			continue
		}
		// Candidate set achievable with kept sub-features: intersect the
		// two maximal sub-paths (prefix and suffix).
		base := ix.subFeatureCandidates(key)
		if float64(len(base)) >= ix.gamma()*float64(len(ids)) {
			ix.features[key] = ids
		}
	}
	return nil
}

// subFeatureCandidates intersects the posting lists of the longest kept
// sub-features (prefix and suffix of the path, recursively).
func (ix *GIndexLite) subFeatureCandidates(key string) []int32 {
	prefix := ix.lookupLongest(key[:len(key)-4], true)
	suffix := ix.lookupLongest(key[4:], false)
	switch {
	case prefix == nil && suffix == nil:
		return allGraphIDs(ix.numGraphs)
	case prefix == nil:
		return append([]int32(nil), suffix...)
	case suffix == nil:
		return append([]int32(nil), prefix...)
	}
	out := append([]int32(nil), prefix...)
	return intersectSorted(out, suffix)
}

// lookupLongest finds the posting list of the longest kept sub-feature of
// key, trimming from the front or back.
func (ix *GIndexLite) lookupLongest(key string, trimBack bool) []int32 {
	for len(key) > 0 {
		if ids, ok := ix.features[key]; ok {
			return ids
		}
		if trimBack {
			key = key[:len(key)-4]
		} else {
			key = key[4:]
		}
	}
	return nil
}

// Filter implements Index: intersect the posting lists of every indexed
// feature of q. Unindexed features (mined away) are skipped — that is the
// precision the mining trades for index size.
func (ix *GIndexLite) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the mined feature set, not the data graphs
	fault.Inject(fault.PointIndexProbe)
	if ix.features == nil {
		return nil
	}
	needed := make(map[string]bool)
	enumeratePaths(q, ix.maxLen(), func(labels []graph.Label) bool {
		needed[pathKey(labels)] = true
		return true
	})
	cand := allGraphIDs(ix.numGraphs)
	for key := range needed {
		ids, ok := ix.features[key]
		if !ok {
			if len(key) == 4 {
				// A single-label feature absent from the index means no
				// data graph contains that label at all.
				return nil
			}
			continue
		}
		cand = intersectSorted(cand, ids)
		if len(cand) == 0 {
			return nil
		}
	}
	return toInts(cand)
}

// MemoryFootprint implements Index.
func (ix *GIndexLite) MemoryFootprint() int64 {
	var b int64
	for k, ids := range ix.features {
		b += int64(len(k)) + 48 + int64(len(ids))*4
	}
	return b
}
