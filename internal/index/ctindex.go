package index

import (
	"time"

	"hash/fnv"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// CTIndex is the fingerprint index of Klein, Kriege and Mutzel [20]:
// every tree subgraph of up to MaxTreeEdges edges and every simple cycle of
// up to MaxCycleLength edges is enumerated, canonicalized, and hashed into
// a fixed-width bit fingerprint per data graph. A data graph is a candidate
// iff its fingerprint has every bit of the query's fingerprint set.
//
// Tree and cycle enumeration is far more expensive than path enumeration —
// the reason CT-Index's indexing time dwarfs Grapes/GGSX in Table VI and
// runs out of time (OOT) on dense or large datasets in Table VIII. Build
// honors the BuildOptions budget so the harness can report OOT.
type CTIndex struct {
	// MaxTreeEdges bounds tree features; 0 selects 4 (the paper's config).
	MaxTreeEdges int
	// MaxCycleLength bounds cycle features in edges; 0 selects 4.
	MaxCycleLength int
	// FingerprintBits is the fingerprint width; 0 selects 4096 bits.
	FingerprintBits int

	fingerprints [][]uint64
	words        int
}

// Name implements Index.
func (*CTIndex) Name() string { return "CT-Index" }

func (ix *CTIndex) maxTree() int {
	if ix.MaxTreeEdges <= 0 {
		return 4
	}
	return ix.MaxTreeEdges
}

func (ix *CTIndex) maxCycle() int {
	if ix.MaxCycleLength <= 0 {
		return 4
	}
	return ix.MaxCycleLength
}

func (ix *CTIndex) bits() int {
	if ix.FingerprintBits <= 0 {
		return 4096
	}
	return ix.FingerprintBits
}

// Build implements Index.
func (ix *CTIndex) Build(db *graph.Database, opts BuildOptions) error {
	ix.words = (ix.bits() + 63) / 64
	ix.fingerprints = make([][]uint64, db.Len())
	var spent int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		fp, err := ix.fingerprint(db.Graph(gid), &spent, &check, opts)
		if err != nil {
			ix.fingerprints = nil
			return err
		}
		ix.fingerprints[gid] = fp
	}
	return nil
}

// fingerprint enumerates g's tree and cycle features into a fresh bit
// fingerprint, spending from the shared feature budget and ticking the
// shared deadline/cancellation checkpoint.
func (ix *CTIndex) fingerprint(g *graph.Graph, spent *int64, check *budget.Checkpoint, opts BuildOptions) ([]uint64, error) {
	fp := make([]uint64, ix.words)
	spend := func() bool {
		*spent++
		if opts.MaxFeatures > 0 && *spent > opts.MaxFeatures {
			return false
		}
		return !check.Tick()
	}
	if !ix.enumerateTrees(g, fp, spend) {
		return nil, ErrBudget
	}
	if !ix.enumerateCycles(g, fp, spend) {
		return nil, ErrBudget
	}
	return fp, nil
}

// setFeature hashes a canonical feature code into the fingerprint with two
// independent hash positions, Bloom-filter style.
func (ix *CTIndex) setFeature(fp []uint64, code string) {
	h1 := fnv.New64a()
	h1.Write([]byte(code))
	a := h1.Sum64()
	h2 := fnv.New64a()
	h2.Write([]byte(code))
	h2.Write([]byte{0x9e, 0x37})
	b := h2.Sum64()
	bits := uint64(ix.bits())
	for _, h := range [2]uint64{a % bits, b % bits} {
		fp[h>>6] |= 1 << (h & 63)
	}
}

// enumerateTrees grows every tree subgraph of up to maxTree edges from
// every start vertex. Each tree is reached once per growth order; the
// resulting duplicate canonical codes are harmless for a bit fingerprint.
func (ix *CTIndex) enumerateTrees(g *graph.Graph, fp []uint64, spend func() bool) bool {
	return enumerateTreeCodes(g, ix.maxTree(), func(code string) bool {
		if !spend() {
			return false
		}
		ix.setFeature(fp, code)
		return true
	})
}

// enumerateTreeCodes visits the AHU canonical code of every tree subgraph
// of g with at most maxE edges (with growth-order duplicates). It returns
// false if the visitor aborted. Shared by CT-Index and the mining-based
// tree index.
func enumerateTreeCodes(g *graph.Graph, maxE int, visit func(code string) bool) bool {
	inTree := make([]bool, g.NumVertices())
	verts := make([]graph.VertexID, 0, maxE+1)
	edges := make([]graph.Edge, 0, maxE)

	var grow func() bool
	grow = func() bool {
		if !visit(treeCode(g, verts, edges)) {
			return false
		}
		if len(edges) == maxE {
			return true
		}
		for vi := 0; vi < len(verts); vi++ {
			v := verts[vi]
			for _, w := range g.Neighbors(v) {
				if inTree[w] {
					continue
				}
				inTree[w] = true
				verts = append(verts, w)
				edges = append(edges, graph.Edge{U: v, V: w})
				ok := grow()
				inTree[w] = false
				verts = verts[:len(verts)-1]
				edges = edges[:len(edges)-1]
				if !ok {
					return false
				}
			}
		}
		return true
	}
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.VertexID(v)
		inTree[vv] = true
		verts = append(verts[:0], vv)
		edges = edges[:0]
		ok := grow()
		inTree[vv] = false
		if !ok {
			return false
		}
	}
	return true
}

// treeCode returns the AHU canonical string of the labeled tree: the
// minimum over all roots of the rooted canonical encoding.
func treeCode(g *graph.Graph, verts []graph.VertexID, edges []graph.Edge) string {
	if len(verts) == 1 {
		return "T" + strconv.FormatUint(uint64(g.Label(verts[0])), 36)
	}
	adj := make(map[graph.VertexID][]graph.VertexID, len(verts))
	for _, e := range edges {
		adj[e.U] = append(adj[e.U], e.V)
		adj[e.V] = append(adj[e.V], e.U)
	}
	var encode func(v, parent graph.VertexID) string
	encode = func(v, parent graph.VertexID) string {
		var parts []string
		for _, w := range adj[v] {
			if w != parent {
				parts = append(parts, encode(w, v))
			}
		}
		sort.Strings(parts)
		var b strings.Builder
		b.WriteByte('(')
		b.WriteString(strconv.FormatUint(uint64(g.Label(v)), 36))
		for _, p := range parts {
			b.WriteString(p)
		}
		b.WriteByte(')')
		return b.String()
	}
	best := ""
	for _, r := range verts {
		c := encode(r, r)
		if best == "" || c < best {
			best = c
		}
	}
	return "T" + best
}

// enumerateCycles finds every simple cycle of length 3..maxCycle edges.
// Cycles are discovered from their minimum-id vertex with a direction
// constraint, so each cycle is reported once.
func (ix *CTIndex) enumerateCycles(g *graph.Graph, fp []uint64, spend func() bool) bool {
	maxLen := ix.maxCycle()
	if maxLen < 3 {
		return true
	}
	onPath := make([]bool, g.NumVertices())
	path := make([]graph.VertexID, 0, maxLen)

	var dfs func(start, v graph.VertexID) bool
	dfs = func(start, v graph.VertexID) bool {
		for _, w := range g.Neighbors(v) {
			if w == start && len(path) >= 3 {
				// Direction dedup: second path vertex must be smaller than
				// the last.
				if path[1] < path[len(path)-1] {
					if !spend() {
						return false
					}
					ix.setFeature(fp, cycleCode(g, path))
				}
				continue
			}
			if w <= start || onPath[w] || len(path) == maxLen {
				continue
			}
			onPath[w] = true
			path = append(path, w)
			ok := dfs(start, w)
			onPath[w] = false
			path = path[:len(path)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.VertexID(v)
		onPath[vv] = true
		path = append(path[:0], vv)
		ok := dfs(vv, vv)
		onPath[vv] = false
		if !ok {
			return false
		}
	}
	return true
}

// cycleCode returns the canonical label sequence of the cycle: the
// lexicographically minimal rotation over both directions.
func cycleCode(g *graph.Graph, cycle []graph.VertexID) string {
	n := len(cycle)
	labels := make([]string, n)
	for i, v := range cycle {
		labels[i] = strconv.FormatUint(uint64(g.Label(v)), 36)
	}
	best := ""
	for dir := 0; dir < 2; dir++ {
		for s := 0; s < n; s++ {
			var b strings.Builder
			for k := 0; k < n; k++ {
				i := (s + k) % n
				if dir == 1 {
					i = ((s-k)%n + n) % n
				}
				b.WriteString(labels[i])
				b.WriteByte(',')
			}
			if c := b.String(); best == "" || c < best {
				best = c
			}
		}
	}
	return "C" + best
}

// Filter implements Index: fingerprint subset test against every graph.
func (ix *CTIndex) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built fingerprint set, not the data graphs
	return ix.FilterExplain(q, nil)
}

// FilterExplain implements Explainable: Filter plus a per-probe report of
// the query fingerprint density (features enumerated, bits set) and the
// bitmask-subset survivors.
func (ix *CTIndex) FilterExplain(q *graph.Graph, ex *obs.Explain) []int {
	fault.Inject(fault.PointIndexProbe)
	var t0 time.Time
	if ex != nil {
		t0 = time.Now()
	}
	probe := obs.IndexProbe{Index: "CT-Index"}
	if ix.fingerprints == nil {
		finishProbe(ex, &probe, t0)
		return nil
	}
	var spent int64
	var check budget.Checkpoint
	fq, err := ix.fingerprint(q, &spent, &check, BuildOptions{})
	if err != nil {
		finishProbe(ex, &probe, t0)
		return nil
	}
	// budget counted every tree and cycle feature the query enumerated.
	probe.Features = int(spent)
	for _, w := range fq {
		probe.FingerprintBits += bits.OnesCount64(w)
	}
	var out []int
	for gid, fg := range ix.fingerprints {
		subset := true
		for w := range fq {
			if fq[w]&^fg[w] != 0 {
				subset = false
				break
			}
		}
		if subset {
			out = append(out, gid)
		}
	}
	probe.Survivors = len(out)
	finishProbe(ex, &probe, t0)
	return out
}

// MemoryFootprint implements Index: one fingerprint per graph.
func (ix *CTIndex) MemoryFootprint() int64 {
	return int64(len(ix.fingerprints)) * int64(ix.words*8+24)
}
