package index

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

func TestEnumeratePathsTriangle(t *testing.T) {
	// Triangle with labels 0,1,2: directed simple paths up to 2 edges:
	// 3 of length 0, 6 of length 1, 6 of length 2.
	g := graph.MustFromEdges([]graph.Label{0, 1, 2},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	byLen := map[int]int{}
	enumeratePaths(g, 2, func(labels []graph.Label) bool {
		byLen[len(labels)-1]++
		return true
	})
	if byLen[0] != 3 || byLen[1] != 6 || byLen[2] != 6 {
		t.Errorf("path counts by length = %v, want map[0:3 1:6 2:6]", byLen)
	}
}

func TestEnumeratePathsRespectsSimplicity(t *testing.T) {
	// A triangle has no simple path of 3 edges that is not the cycle; with
	// maxLen=3 the only length-3 walks would revisit the start, so none.
	g := graph.MustFromEdges([]graph.Label{0, 0, 0},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	count3 := 0
	enumeratePaths(g, 3, func(labels []graph.Label) bool {
		if len(labels) == 4 {
			count3++
		}
		return true
	})
	if count3 != 0 {
		t.Errorf("found %d length-3 simple paths in a triangle, want 0", count3)
	}
}

func TestEnumeratePathsAbort(t *testing.T) {
	g := graph.MustFromEdges([]graph.Label{0, 0, 0},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	calls := 0
	done := enumeratePaths(g, 4, func([]graph.Label) bool {
		calls++
		return calls < 2
	})
	if done {
		t.Error("enumeratePaths should report abort")
	}
	if calls != 2 {
		t.Errorf("visitor called %d times after aborting, want 2", calls)
	}
}

func TestCountPathsMatchesEnumeration(t *testing.T) {
	r := rand.New(rand.NewSource(61))
	g := randomConnected(r, 8, 6, 2)
	counts := countPaths(g, 3)
	total := int32(0)
	for _, c := range counts {
		total += c
	}
	n := int32(0)
	enumeratePaths(g, 3, func([]graph.Label) bool { n++; return true })
	if total != n {
		t.Errorf("countPaths total %d != enumeration total %d", total, n)
	}
}

func TestPathKeyInjective(t *testing.T) {
	a := pathKey([]graph.Label{1, 2})
	b := pathKey([]graph.Label{2, 1})
	c := pathKey([]graph.Label{1, 2, 0})
	if a == b || a == c || b == c {
		t.Error("pathKey collided on distinct sequences")
	}
	if pathKey([]graph.Label{1 << 20}) == pathKey([]graph.Label{1}) {
		t.Error("pathKey truncates wide labels")
	}
}

// TestPathCountMonotoneUnderSubgraph: the core soundness property of path
// count filtering. If q ⊆ G (witnessed by construction: q is drawn from G),
// then count_G(f) >= count_q(f) for every feature f.
func TestPathCountMonotoneUnderSubgraph(t *testing.T) {
	r := rand.New(rand.NewSource(67))
	for trial := 0; trial < 25; trial++ {
		g := randomConnected(r, 6+r.Intn(8), r.Intn(12), 1+r.Intn(3))
		q := walkQuery(r, g, 1+r.Intn(5))
		qc := countPaths(q, DefaultMaxPathLength)
		gc := countPaths(g, DefaultMaxPathLength)
		for key, need := range qc {
			if gc[key] < need {
				t.Fatalf("trial %d: feature with count %d in q has %d in supergraph",
					trial, need, gc[key])
			}
		}
	}
}

func TestTreeCodeInvariance(t *testing.T) {
	g := graph.MustFromEdges([]graph.Label{5, 7, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	// The same path relabeled with different vertex ids must canonicalize
	// identically.
	h := graph.MustFromEdges([]graph.Label{9, 7, 5},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	cg := treeCode(g, []graph.VertexID{0, 1, 2}, g.Edges())
	ch := treeCode(h, []graph.VertexID{0, 1, 2}, h.Edges())
	if cg != ch {
		t.Errorf("treeCode not invariant: %q vs %q", cg, ch)
	}
	// A star and a path with the same labels must differ.
	star := graph.MustFromEdges([]graph.Label{7, 5, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}})
	cs := treeCode(star, []graph.VertexID{0, 1, 2}, star.Edges())
	path := graph.MustFromEdges([]graph.Label{5, 7, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	cp := treeCode(path, []graph.VertexID{0, 1, 2}, path.Edges())
	// star center 7 with leaves 5,9; path center 7 with leaves 5,9 — these
	// are actually isomorphic trees, so the codes must match.
	if cs != cp {
		t.Errorf("isomorphic trees got different codes: %q vs %q", cs, cp)
	}
	// A genuinely different tree: path with center 5.
	path2 := graph.MustFromEdges([]graph.Label{7, 5, 9},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	cp2 := treeCode(path2, []graph.VertexID{0, 1, 2}, path2.Edges())
	if cp2 == cp {
		t.Errorf("non-isomorphic trees share code %q", cp2)
	}
}

func TestCycleCodeInvariance(t *testing.T) {
	g := graph.MustFromEdges([]graph.Label{1, 2, 3, 4},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	base := cycleCode(g, []graph.VertexID{0, 1, 2, 3})
	rot := cycleCode(g, []graph.VertexID{2, 3, 0, 1})
	rev := cycleCode(g, []graph.VertexID{3, 2, 1, 0})
	if base != rot || base != rev {
		t.Errorf("cycleCode not rotation/reflection invariant: %q %q %q", base, rot, rev)
	}
	other := graph.MustFromEdges([]graph.Label{1, 3, 2, 4},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if cycleCode(other, []graph.VertexID{0, 1, 2, 3}) == base {
		t.Error("distinct label cycles share a code")
	}
}

func TestCycleCodeAmbiguityGuard(t *testing.T) {
	// Multi-digit labels must not be confusable: cycle (1,23) vs (12,3).
	a := graph.MustFromEdges([]graph.Label{1, 23, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	b := graph.MustFromEdges([]graph.Label{12, 3, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	if cycleCode(a, []graph.VertexID{0, 1, 2}) == cycleCode(b, []graph.VertexID{0, 1, 2}) {
		t.Error("cycleCode is ambiguous across label boundaries")
	}
}
