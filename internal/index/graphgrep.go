package index

import (
	"hash/fnv"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
)

// GraphGrep (Shasha, Wang and Giugno [30]) — the ancestor of Grapes and
// GGSX in Table II: path features hashed into a fixed-width table of
// occurrence counts per graph ("fingerprint"). Hash collisions merge
// feature counts, which stays complete: if q ⊆ G then for every bucket b,
// Σ_{f∈b} count_q(f) ≤ Σ_{f∈b} count_G(f), so comparing bucket counts
// never rejects a true answer. Collisions only cost precision — the reason
// its successors moved to exact tries and suffix trees.
type GraphGrep struct {
	// MaxPathLength is the maximum feature length in edges;
	// 0 selects DefaultMaxPathLength.
	MaxPathLength int
	// Buckets is the fingerprint width; 0 selects 4096.
	Buckets int

	tables []map[uint32]int32 // per graph: bucket -> count
}

// Name implements Index.
func (*GraphGrep) Name() string { return "GraphGrep" }

func (ix *GraphGrep) maxLen() int {
	if ix.MaxPathLength <= 0 {
		return DefaultMaxPathLength
	}
	return ix.MaxPathLength
}

func (ix *GraphGrep) buckets() uint32 {
	if ix.Buckets <= 0 {
		return 4096
	}
	return uint32(ix.Buckets)
}

// Build implements Index.
func (ix *GraphGrep) Build(db *graph.Database, opts BuildOptions) error {
	ix.tables = make([]map[uint32]int32, db.Len())
	var features int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		table := make(map[uint32]int32)
		ok := enumeratePaths(db.Graph(gid), ix.maxLen(), func(labels []graph.Label) bool {
			table[ix.bucket(labels)]++
			features++
			if check.Tick() {
				return false
			}
			return opts.MaxFeatures <= 0 || features <= opts.MaxFeatures
		})
		if !ok {
			ix.tables = nil
			return ErrBudget
		}
		ix.tables[gid] = table
	}
	return nil
}

func (ix *GraphGrep) bucket(labels []graph.Label) uint32 {
	h := fnv.New32a()
	var buf [4]byte
	for _, l := range labels {
		buf[0], buf[1], buf[2], buf[3] = byte(l), byte(l>>8), byte(l>>16), byte(l>>24)
		h.Write(buf[:])
	}
	return h.Sum32() % ix.buckets()
}

// Filter implements Index.
func (ix *GraphGrep) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built hash tables, not the data graphs
	fault.Inject(fault.PointIndexProbe)
	if ix.tables == nil {
		return nil
	}
	need := make(map[uint32]int32)
	enumeratePaths(q, ix.maxLen(), func(labels []graph.Label) bool {
		need[ix.bucket(labels)]++
		return true
	})
	var out []int
	for gid, table := range ix.tables {
		pass := true
		for b, c := range need {
			if table[b] < c {
				pass = false
				break
			}
		}
		if pass {
			out = append(out, gid)
		}
	}
	return out
}

// MemoryFootprint implements Index.
func (ix *GraphGrep) MemoryFootprint() int64 {
	var b int64
	for _, t := range ix.tables {
		b += 48 + int64(len(t))*16
	}
	return b
}
