package index

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/graph"
)

// Property-based tests (testing/quick) on the index data structures.

// TestQuickTrieCountsMatchDirect: for any database, the Grapes trie must
// report exactly the per-graph occurrence counts that direct path counting
// produces.
func TestQuickTrieCountsMatchDirect(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 3+r.Intn(5), 7, 1+r.Intn(3))
		var ix Grapes
		if err := ix.Build(db, BuildOptions{}); err != nil {
			return false
		}
		for gid := 0; gid < db.Len(); gid++ {
			want := countPaths(db.Graph(gid), ix.maxLen())
			var visited int64
			for key, c := range want {
				node := ix.lookup(key, &visited)
				if node == nil {
					return false
				}
				found := false
				for i, id := range node.graphIDs {
					if id == int32(gid) {
						if node.counts[i] != c {
							return false
						}
						found = true
						break
					}
				}
				if !found {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickSuffixClosure: every suffix of every GGSX-indexed path is itself
// reachable in the suffix tree with the same graph id recorded.
func TestQuickSuffixClosure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		db := randomDB(r, 2+r.Intn(4), 6, 1+r.Intn(3))
		var ix GGSX
		if err := ix.Build(db, BuildOptions{}); err != nil {
			return false
		}
		for gid := 0; gid < db.Len(); gid++ {
			ok := true
			var visited int64
			enumeratePaths(db.Graph(gid), ix.maxLen(), func(labels []graph.Label) bool {
				for s := 0; s < len(labels); s++ {
					node := ix.lookup(pathKey(labels[s:]), &visited)
					if node == nil {
						ok = false
						return false
					}
					present := false
					for _, id := range node.graphIDs {
						if id == int32(gid) {
							present = true
							break
						}
					}
					if !present {
						ok = false
						return false
					}
				}
				return true
			})
			if !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestQuickFingerprintSubset: if q is drawn from G, q's CT-Index
// fingerprint must be a bit-subset of G's.
func TestQuickFingerprintSubset(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		g := randomConnected(r, 6+r.Intn(8), r.Intn(8), 1+r.Intn(3))
		q := walkQuery(r, g, 1+r.Intn(4))
		var ix CTIndex
		if err := ix.Build(graph.NewDatabase([]*graph.Graph{g}), BuildOptions{}); err != nil {
			return false
		}
		var spent int64
		var check budget.Checkpoint
		fq, err := ix.fingerprint(q, &spent, &check, BuildOptions{})
		if err != nil {
			return false
		}
		fg := ix.fingerprints[0]
		for w := range fq {
			if fq[w]&^fg[w] != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestQuickIntersectSorted: intersectSorted agrees with a map-based
// reference on arbitrary sorted inputs.
func TestQuickIntersectSorted(t *testing.T) {
	f := func(rawA, rawB []uint8) bool {
		a := dedupSorted(rawA)
		b := dedupSorted(rawB)
		ref := map[int32]bool{}
		for _, x := range b {
			ref[x] = true
		}
		var want []int32
		for _, x := range a {
			if ref[x] {
				want = append(want, x)
			}
		}
		got := intersectSorted(append([]int32(nil), a...), b)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func dedupSorted(raw []uint8) []int32 {
	seen := map[int32]bool{}
	var out []int32
	for _, x := range raw {
		seen[int32(x)] = true
	}
	for x := int32(0); x < 256; x++ {
		if seen[x] {
			out = append(out, x)
		}
	}
	return out
}

// TestQuickRetainWithCount: retainWithCount keeps exactly the candidates
// whose posting-list count meets the threshold.
func TestQuickRetainWithCount(t *testing.T) {
	f := func(rawCand, rawIDs []uint8, rawCounts []uint8, need uint8) bool {
		cand := dedupSorted(rawCand)
		ids := dedupSorted(rawIDs)
		counts := make([]int32, len(ids))
		for i := range counts {
			if i < len(rawCounts) {
				counts[i] = int32(rawCounts[i])
			}
		}
		ref := map[int32]int32{}
		for i, id := range ids {
			ref[id] = counts[i]
		}
		var want []int32
		for _, c := range cand {
			if cnt, ok := ref[c]; ok && cnt >= int32(need) {
				want = append(want, c)
			}
		}
		got := retainWithCount(append([]int32(nil), cand...), ids, counts, int32(need))
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
