package index

import (
	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
)

// TreePiLite is a mining-based tree-feature index in the spirit of TreePi
// (Zhang, Hu and Yang [40]) and SwiftIndex [28] from the paper's Table II:
// subtree features up to MaxTreeEdges edges are enumerated, canonicalized
// (AHU codes) and mined — only features contained in at least SupportRatio
// of the data graphs are kept, except size-≤1 features which anchor
// completeness. Filtering intersects the posting lists of the query's
// indexed features; query features mined away are simply skipped, costing
// precision but never correctness.
type TreePiLite struct {
	// MaxTreeEdges bounds tree features; 0 selects 3 (tree enumeration is
	// markedly costlier than path enumeration — the mining-based trade the
	// paper's §II-B describes).
	MaxTreeEdges int
	// SupportRatio is the minimum fraction of graphs containing a kept
	// feature; 0 selects 0.05.
	SupportRatio float64

	features  map[string][]int32
	numGraphs int
}

// Name implements Index.
func (*TreePiLite) Name() string { return "TreePi" }

func (ix *TreePiLite) maxTree() int {
	if ix.MaxTreeEdges <= 0 {
		return 3
	}
	return ix.MaxTreeEdges
}

func (ix *TreePiLite) support() float64 {
	if ix.SupportRatio <= 0 {
		return 0.05
	}
	return ix.SupportRatio
}

// Build implements Index.
func (ix *TreePiLite) Build(db *graph.Database, opts BuildOptions) error {
	ix.numGraphs = db.Len()
	postings := make(map[string][]int32)
	var features int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		seen := make(map[string]bool)
		ok := enumerateTreeCodes(db.Graph(gid), ix.maxTree(), func(code string) bool {
			features++
			if check.Tick() {
				return false
			}
			if opts.MaxFeatures > 0 && features > opts.MaxFeatures {
				return false
			}
			if !seen[code] {
				seen[code] = true
				postings[code] = append(postings[code], int32(gid))
			}
			return true
		})
		if !ok {
			return ErrBudget
		}
	}

	minSupport := int(ix.support() * float64(db.Len()))
	if minSupport < 1 {
		minSupport = 1
	}
	ix.features = make(map[string][]int32)
	for code, ids := range postings {
		if len(ids) >= minSupport || isSingleVertexCode(code) {
			ix.features[code] = ids
		}
	}
	return nil
}

// isSingleVertexCode recognizes the code of a one-vertex tree ("T" + one
// base-36 label, no parentheses).
func isSingleVertexCode(code string) bool {
	return len(code) >= 2 && code[0] == 'T' && code[1] != '('
}

// Filter implements Index.
func (ix *TreePiLite) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built tree-feature table, not the data graphs
	fault.Inject(fault.PointIndexProbe)
	if ix.features == nil {
		return nil
	}
	needed := make(map[string]bool)
	enumerateTreeCodes(q, ix.maxTree(), func(code string) bool {
		needed[code] = true
		return true
	})
	cand := allGraphIDs(ix.numGraphs)
	for code := range needed {
		ids, ok := ix.features[code]
		if !ok {
			if isSingleVertexCode(code) {
				// A label missing from every data graph: no answers.
				return nil
			}
			continue // mined away: no pruning from this feature
		}
		cand = intersectSorted(cand, ids)
		if len(cand) == 0 {
			return nil
		}
	}
	return toInts(cand)
}

// MemoryFootprint implements Index.
func (ix *TreePiLite) MemoryFootprint() int64 {
	var b int64
	for code, ids := range ix.features {
		b += int64(len(code)) + 48 + int64(len(ids))*4
	}
	return b
}
