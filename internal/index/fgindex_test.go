package index

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

func TestCanonicalCodeIsomorphismInvariant(t *testing.T) {
	// The same labeled triangle-with-tail under different vertex
	// numberings must canonicalize identically.
	a := graph.MustFromEdges([]graph.Label{0, 1, 2, 1},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 1, V: 2}, {U: 2, V: 3}})
	// Image of a under the vertex permutation 0→2, 1→3, 2→1, 3→0.
	b := graph.MustFromEdges([]graph.Label{1, 2, 0, 1},
		[]graph.Edge{{U: 2, V: 3}, {U: 2, V: 1}, {U: 3, V: 1}, {U: 1, V: 0}})
	if canonicalSmallGraphCode(a) != canonicalSmallGraphCode(b) {
		t.Errorf("isomorphic graphs canonicalize differently:\n%s\n%s",
			canonicalSmallGraphCode(a), canonicalSmallGraphCode(b))
	}
	// A different structure with identical label multiset must differ.
	c := graph.MustFromEdges([]graph.Label{0, 1, 2, 1}, // path, no triangle
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 0}})
	if canonicalSmallGraphCode(a) == canonicalSmallGraphCode(c) {
		t.Error("non-isomorphic graphs share a canonical code")
	}
}

func TestCanonicalCodeRandomPermutations(t *testing.T) {
	r := rand.New(rand.NewSource(503))
	for trial := 0; trial < 40; trial++ {
		n := 2 + r.Intn(5)
		g := randomConnected(r, n, r.Intn(2*n), 1+r.Intn(3))
		base := canonicalSmallGraphCode(g)
		// Apply a random vertex permutation and re-canonicalize.
		perm := r.Perm(n)
		labels := make([]graph.Label, n)
		for i := 0; i < n; i++ {
			labels[perm[i]] = g.Label(graph.VertexID(i))
		}
		var edges []graph.Edge
		for _, e := range g.Edges() {
			edges = append(edges, graph.Edge{
				U: graph.VertexID(perm[e.U]),
				V: graph.VertexID(perm[e.V]),
			})
		}
		h := graph.MustFromEdges(labels, edges)
		if canonicalSmallGraphCode(h) != base {
			t.Fatalf("trial %d: permutation changed the canonical code", trial)
		}
	}
}

func TestFGIndexExactAnswer(t *testing.T) {
	r := rand.New(rand.NewSource(509))
	db := randomDB(r, 12, 8, 2)
	var ix FGIndexLite
	ix.SupportRatio = 0.01 // keep almost every feature
	if err := ix.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	hits := 0
	for k := 0; k < 10; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(3))
		if q.NumEdges() > ix.maxEdges() {
			continue
		}
		ids, exact := ix.FilterExact(q)
		if !exact {
			continue
		}
		hits++
		// Exact answers must equal the true answer set.
		want := trueAnswers(db, q)
		if len(ids) != len(want) {
			t.Fatalf("exact answer %v != truth (%d graphs)", ids, len(want))
		}
		for _, id := range ids {
			if !want[id] {
				t.Fatalf("exact answer contains non-answer %d", id)
			}
		}
	}
	if hits == 0 {
		t.Error("no verification-free hits on small queries drawn from the database")
	}
}

func TestEnumerateConnectedSubgraphsFindsCycles(t *testing.T) {
	// A labeled triangle's canonical code must be produced by the
	// enumeration (cycles are connected subgraphs, not trees).
	g := graph.MustFromEdges([]graph.Label{0, 1, 2},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}, {U: 0, V: 2}})
	want := canonicalSmallGraphCode(g)
	found := false
	enumerateConnectedSubgraphs(g, 3, func(code string) bool {
		if code == want {
			found = true
		}
		return true
	})
	if !found {
		t.Error("triangle feature never enumerated")
	}
}

func TestIsSingleVertexGraphCode(t *testing.T) {
	single := graph.MustFromEdges([]graph.Label{7}, nil)
	if !isSingleVertexGraphCode(canonicalSmallGraphCode(single)) {
		t.Error("single-vertex code not recognized")
	}
	pair := graph.MustFromEdges([]graph.Label{1, 2}, []graph.Edge{{U: 0, V: 1}})
	if isSingleVertexGraphCode(canonicalSmallGraphCode(pair)) {
		t.Error("two-vertex code misclassified as single-vertex")
	}
}
