package index

import (
	"subgraphquery/internal/graph"
)

// Path feature enumeration shared by Grapes and GGSX: all simple directed
// walks with 0..maxLen edges, identified by their label sequences. Both the
// query and the data graphs are enumerated identically, so per-feature
// occurrence counts compare soundly: a subgraph isomorphism maps each
// directed simple path of q to a distinct directed simple path of G with
// the same label sequence.

// pathVisitor receives each enumerated path's label sequence. The slice is
// reused; implementations must not retain it. Returning false aborts the
// enumeration (budget exhausted).
type pathVisitor func(labels []graph.Label) bool

// enumeratePaths walks all simple paths of g with at most maxLen edges,
// invoking visit once per directed path instance (including single-vertex
// paths). It returns false if the visitor aborted.
func enumeratePaths(g *graph.Graph, maxLen int, visit pathVisitor) bool {
	n := g.NumVertices()
	onPath := make([]bool, n)
	labels := make([]graph.Label, 0, maxLen+1)
	var dfs func(v graph.VertexID) bool
	dfs = func(v graph.VertexID) bool {
		labels = append(labels, g.Label(v))
		onPath[v] = true
		ok := visit(labels)
		if ok && len(labels) <= maxLen {
			for _, w := range g.Neighbors(v) {
				if !onPath[w] {
					if !dfs(w) {
						ok = false
						break
					}
				}
			}
		}
		onPath[v] = false
		labels = labels[:len(labels)-1]
		return ok
	}
	for v := 0; v < n; v++ {
		if !dfs(graph.VertexID(v)) {
			return false
		}
	}
	return true
}

// pathKey encodes a label sequence as a compact string map key.
func pathKey(labels []graph.Label) string {
	buf := make([]byte, 0, len(labels)*4)
	for _, l := range labels {
		buf = append(buf, byte(l), byte(l>>8), byte(l>>16), byte(l>>24))
	}
	return string(buf)
}

// countPaths returns the number of occurrences of every path feature of g
// up to maxLen edges, keyed by pathKey. Used on the query side of both path
// indexes and on the data side by tests.
func countPaths(g *graph.Graph, maxLen int) map[string]int32 {
	counts := make(map[string]int32)
	enumeratePaths(g, maxLen, func(labels []graph.Label) bool {
		counts[pathKey(labels)]++
		return true
	})
	return counts
}
