package index

import (
	"time"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// GGSX (GraphGrepSX, Bonnici et al. [2]) indexes the same exhaustively
// enumerated path features as Grapes but stores them in a suffix tree:
// inserting every suffix of every maximal enumeration path shares structure
// between features, and each node keeps only the *set* of data graphs whose
// path set reaches that node. Filtering therefore tests feature presence,
// not occurrence counts — the reason GGSX's filtering precision trails
// Grapes' in the paper's Figure 8.
type GGSX struct {
	// MaxPathLength is the maximum feature length in edges;
	// 0 selects DefaultMaxPathLength.
	MaxPathLength int

	root      *ggsxNode
	numGraphs int
	nodes     int64
	entries   int64
}

type ggsxNode struct {
	children map[graph.Label]*ggsxNode
	graphIDs []int32 // ascending ids of graphs containing this path
}

// Name implements Index.
func (*GGSX) Name() string { return "GGSX" }

func (ix *GGSX) maxLen() int {
	if ix.MaxPathLength <= 0 {
		return DefaultMaxPathLength
	}
	return ix.MaxPathLength
}

// Build implements Index. Construction is sequential (the original GGSX is
// single-threaded); the suffix expansion inserts every suffix of every
// enumerated path.
func (ix *GGSX) Build(db *graph.Database, opts BuildOptions) error {
	ix.root = &ggsxNode{}
	ix.nodes = 1
	ix.entries = 0
	ix.numGraphs = db.Len()

	var features int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		g := db.Graph(gid)
		ok := enumeratePaths(g, ix.maxLen(), func(labels []graph.Label) bool {
			// Insert every suffix of the path; longer paths revisit the
			// shorter suffixes, sharing tree structure.
			for s := 0; s < len(labels); s++ {
				ix.insert(labels[s:], int32(gid))
			}
			features++
			if check.Tick() {
				return false
			}
			if opts.MaxFeatures > 0 && features > opts.MaxFeatures {
				return false
			}
			return true
		})
		if !ok {
			return ErrBudget
		}
	}
	debugCheckGGSX(ix) // sqdebug builds only; compiles away otherwise
	return nil
}

func (ix *GGSX) insert(labels []graph.Label, gid int32) {
	node := ix.root
	for _, l := range labels {
		if node.children == nil {
			node.children = make(map[graph.Label]*ggsxNode)
		}
		child := node.children[l]
		if child == nil {
			child = &ggsxNode{}
			node.children[l] = child
			ix.nodes++
		}
		node = child
	}
	if n := len(node.graphIDs); n == 0 || node.graphIDs[n-1] != gid {
		node.graphIDs = append(node.graphIDs, gid)
		ix.entries++
	}
}

// Filter implements Index: C(q) = graphs containing every path feature of q
// at least once.
func (ix *GGSX) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built suffix tree, not the data graphs
	return ix.FilterExplain(q, nil)
}

// FilterExplain implements Explainable: Filter plus a per-probe report of
// suffix-tree nodes visited and the presence-set intersection trajectory.
func (ix *GGSX) FilterExplain(q *graph.Graph, ex *obs.Explain) []int {
	fault.Inject(fault.PointIndexProbe)
	var t0 time.Time
	if ex != nil {
		t0 = time.Now()
	}
	probe := obs.IndexProbe{Index: "GGSX"}
	if ix.root == nil {
		finishProbe(ex, &probe, t0)
		return nil
	}
	features := countPaths(q, ix.maxLen())
	probe.Features = len(features)
	cand := allGraphIDs(ix.numGraphs)
	for key := range features {
		node := ix.lookup(key, &probe.NodesVisited)
		if node == nil {
			finishProbe(ex, &probe, t0)
			return nil
		}
		cand = intersectSorted(cand, node.graphIDs)
		if ex != nil {
			probe.IntersectionSizes = append(probe.IntersectionSizes, len(cand))
		}
		if len(cand) == 0 {
			finishProbe(ex, &probe, t0)
			return nil
		}
	}
	probe.Survivors = len(cand)
	finishProbe(ex, &probe, t0)
	return toInts(cand)
}

func (ix *GGSX) lookup(key string, visited *int64) *ggsxNode {
	node := ix.root
	for i := 0; i < len(key); i += 4 {
		if node.children == nil {
			return nil
		}
		l := graph.Label(uint32(key[i]) | uint32(key[i+1])<<8 | uint32(key[i+2])<<16 | uint32(key[i+3])<<24)
		node = node.children[l]
		*visited++
		if node == nil {
			return nil
		}
	}
	return node
}

// MemoryFootprint implements Index.
func (ix *GGSX) MemoryFootprint() int64 {
	const nodeOverhead = 56
	return ix.nodes*nodeOverhead + ix.entries*4
}

// intersectSorted intersects two ascending id lists in place of the first,
// delegating to the shared kernel (merge scan with a galloping fallback for
// skewed posting-list lengths).
func intersectSorted(a, b []int32) []int32 {
	return graph.IntersectSorted(a[:0], a, b)
}
