package index

import (
	"time"

	"runtime"
	"sort"
	"sync"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// Grapes is the path-trie index of Giugno et al. [10]: every labeled simple
// path of up to MaxPathLength edges is enumerated exhaustively for every
// data graph and stored in a trie whose nodes carry per-graph occurrence
// counts. Filtering admits a data graph only if, for every path feature f
// of the query, the graph contains at least as many occurrences of f as the
// query does. Construction runs on a worker pool (the paper uses 6
// threads).
type Grapes struct {
	// MaxPathLength is the maximum feature length in edges;
	// 0 selects DefaultMaxPathLength.
	MaxPathLength int

	root      *grapesNode
	numGraphs int
	nodes     int64
	entries   int64
}

type grapesNode struct {
	children map[graph.Label]*grapesNode
	// graphIDs (ascending) and counts are parallel: counts[i] occurrences
	// of this node's path in graph graphIDs[i].
	graphIDs []int32
	counts   []int32
}

// Name implements Index.
func (*Grapes) Name() string { return "Grapes" }

func (ix *Grapes) maxLen() int {
	if ix.MaxPathLength <= 0 {
		return DefaultMaxPathLength
	}
	return ix.MaxPathLength
}

// Build implements Index. Path enumeration is parallel across data graphs;
// trie insertion happens in ascending graph id order so per-node id lists
// stay sorted.
func (ix *Grapes) Build(db *graph.Database, opts BuildOptions) error {
	workers := opts.Workers
	if workers <= 0 {
		workers = 1
	}
	if workers > runtime.NumCPU() {
		workers = runtime.NumCPU()
	}

	var budgetErr error
	var mu sync.Mutex
	var used int64

	// Workers enumerate per-graph path counts and stream them to a single
	// merger goroutine that inserts into the trie immediately — bounded
	// memory instead of buffering every graph's feature map.
	type buildResult struct {
		gid    int32
		counts map[string]int32
	}
	results := make(chan buildResult, workers)
	mergeDone := make(chan struct{})
	ix.root = &grapesNode{}
	ix.nodes = 1
	ix.entries = 0
	ix.numGraphs = db.Len()
	go func() {
		defer close(mergeDone)
		for r := range results {
			for key, c := range r.counts {
				ix.insert(key, r.gid, c)
			}
		}
	}()

	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// Keep draining after a budget failure so the producer
				// never blocks on a dead pool.
				mu.Lock()
				dead := budgetErr != nil
				mu.Unlock()
				if dead {
					continue
				}
				counts := make(map[string]int32)
				var local int64
				check := opts.checkpoint()
				ok := enumeratePaths(db.Graph(i), ix.maxLen(), func(labels []graph.Label) bool {
					counts[pathKey(labels)]++
					local++
					if check.Tick() {
						return false
					}
					if opts.MaxFeatures > 0 && local%8192 == 0 {
						mu.Lock()
						used += local
						local = 0
						over := used > opts.MaxFeatures
						mu.Unlock()
						if over {
							return false
						}
					}
					return true
				})
				if !ok {
					mu.Lock()
					budgetErr = ErrBudget
					mu.Unlock()
					continue
				}
				mu.Lock()
				used += local
				if opts.MaxFeatures > 0 && used > opts.MaxFeatures {
					budgetErr = ErrBudget
					mu.Unlock()
					continue
				}
				mu.Unlock()
				results <- buildResult{gid: int32(i), counts: counts}
			}
		}()
	}
	for i := 0; i < db.Len(); i++ {
		jobs <- i
		mu.Lock()
		stop := budgetErr != nil
		mu.Unlock()
		if stop {
			break
		}
	}
	close(jobs)
	wg.Wait()
	close(results)
	<-mergeDone
	if budgetErr != nil {
		ix.root = nil
		return budgetErr
	}
	ix.sortPostings()
	debugCheckGrapes(ix) // sqdebug builds only; compiles away otherwise
	return nil
}

// sortPostings orders every node's posting list by graph id; merging is
// out of order across workers.
func (ix *Grapes) sortPostings() {
	var walk func(n *grapesNode)
	walk = func(n *grapesNode) {
		if len(n.graphIDs) > 1 {
			idx := make([]int, len(n.graphIDs))
			for i := range idx {
				idx[i] = i
			}
			sort.Slice(idx, func(a, b int) bool { return n.graphIDs[idx[a]] < n.graphIDs[idx[b]] })
			ids := make([]int32, len(idx))
			counts := make([]int32, len(idx))
			for pos, i := range idx {
				ids[pos] = n.graphIDs[i]
				counts[pos] = n.counts[i]
			}
			n.graphIDs, n.counts = ids, counts
		}
		for _, c := range n.children {
			walk(c)
		}
	}
	walk(ix.root)
}

func (ix *Grapes) insert(key string, gid, count int32) {
	node := ix.root
	for i := 0; i < len(key); i += 4 {
		l := graph.Label(uint32(key[i]) | uint32(key[i+1])<<8 | uint32(key[i+2])<<16 | uint32(key[i+3])<<24)
		if node.children == nil {
			node.children = make(map[graph.Label]*grapesNode)
		}
		child := node.children[l]
		if child == nil {
			child = &grapesNode{}
			node.children[l] = child
			ix.nodes++
		}
		node = child
	}
	node.graphIDs = append(node.graphIDs, gid)
	node.counts = append(node.counts, count)
	ix.entries++
}

// lookup returns the trie node of the given feature, or nil, counting the
// child hops the walk performed into *visited.
func (ix *Grapes) lookup(key string, visited *int64) *grapesNode {
	node := ix.root
	for i := 0; i < len(key); i += 4 {
		if node.children == nil {
			return nil
		}
		l := graph.Label(uint32(key[i]) | uint32(key[i+1])<<8 | uint32(key[i+2])<<16 | uint32(key[i+3])<<24)
		node = node.children[l]
		*visited++
		if node == nil {
			return nil
		}
	}
	return node
}

// Filter implements Index: C(q) = graphs containing at least count_q(f)
// occurrences of every path feature f of q.
func (ix *Grapes) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built trie, not the data graphs
	return ix.FilterExplain(q, nil)
}

// FilterExplain implements Explainable: Filter plus a per-probe report of
// trie nodes visited and the occurrence-list intersection trajectory.
func (ix *Grapes) FilterExplain(q *graph.Graph, ex *obs.Explain) []int {
	fault.Inject(fault.PointIndexProbe)
	var t0 time.Time
	if ex != nil {
		t0 = time.Now()
	}
	probe := obs.IndexProbe{Index: "Grapes", Survivors: 0}
	if ix.root == nil {
		finishProbe(ex, &probe, t0)
		return nil
	}
	features := countPaths(q, ix.maxLen())
	probe.Features = len(features)
	cand := allGraphIDs(ix.numGraphs)
	for key, need := range features {
		node := ix.lookup(key, &probe.NodesVisited)
		if node == nil {
			finishProbe(ex, &probe, t0)
			return nil
		}
		cand = retainWithCount(cand, node.graphIDs, node.counts, need)
		if ex != nil {
			probe.IntersectionSizes = append(probe.IntersectionSizes, len(cand))
		}
		if len(cand) == 0 {
			finishProbe(ex, &probe, t0)
			return nil
		}
	}
	probe.Survivors = len(cand)
	finishProbe(ex, &probe, t0)
	return toInts(cand)
}

// finishProbe stamps the probe's duration and records it (no-op with a
// nil Explain).
func finishProbe(ex *obs.Explain, p *obs.IndexProbe, t0 time.Time) {
	if ex == nil {
		return
	}
	p.DurationUS = time.Since(t0).Microseconds()
	ex.ObserveIndexProbe(*p)
}

// MemoryFootprint implements Index: nodes plus per-node posting lists.
func (ix *Grapes) MemoryFootprint() int64 {
	const nodeOverhead = 64 // struct, map header, child pointer amortized
	return ix.nodes*nodeOverhead + ix.entries*8
}

// allGraphIDs returns [0..n).
func allGraphIDs(n int) []int32 {
	ids := make([]int32, n)
	for i := range ids {
		ids[i] = int32(i)
	}
	return ids
}

// retainWithCount intersects the sorted candidate ids with the sorted
// posting list, keeping ids whose count meets the requirement. When the
// posting list dwarfs the surviving candidate set — the common case after a
// few selective features — it gallops through the list instead of scanning
// it linearly.
func retainWithCount(cand, ids []int32, counts []int32, need int32) []int32 {
	out := cand[:0]
	j := 0
	gallop := len(ids) >= 16*len(cand)
	for _, c := range cand {
		if gallop {
			j = graph.LowerBound(ids, j, c)
		} else {
			for j < len(ids) && ids[j] < c {
				j++
			}
		}
		if j < len(ids) && ids[j] == c && counts[j] >= need {
			out = append(out, c)
		}
	}
	return out
}

func toInts(ids []int32) []int {
	out := make([]int, len(ids))
	for i, v := range ids {
		out[i] = int(v)
	}
	sort.Ints(out)
	return out
}
