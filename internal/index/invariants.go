package index

import "fmt"

// Runtime invariant assertions over the trie-shaped indexes, active only
// under the sqdebug build tag (see sqdebug_on.go). Both Grapes and GGSX
// rely on per-node posting lists being strictly ascending — the
// intersection-based Filter silently returns wrong candidate sets
// otherwise — and on the nodes/entries counters matching the real tree,
// since MemoryFootprint feeds the paper's reported index sizes.

// debugCheckGrapes panics if the built Grapes trie violates an invariant.
// No-op in normal builds.
func debugCheckGrapes(ix *Grapes) {
	if !debugInvariants || ix.root == nil {
		return
	}
	var nodes, entries int64
	var walk func(n *grapesNode, depth int)
	walk = func(n *grapesNode, depth int) {
		nodes++
		if len(n.graphIDs) != len(n.counts) {
			debugFailf("Grapes node at depth %d has %d ids but %d counts", depth, len(n.graphIDs), len(n.counts))
		}
		for i, id := range n.graphIDs {
			if int(id) >= ix.numGraphs || id < 0 {
				debugFailf("Grapes node at depth %d lists graph %d outside [0,%d)", depth, id, ix.numGraphs)
			}
			if i > 0 && n.graphIDs[i-1] >= id {
				debugFailf("Grapes posting list at depth %d not strictly ascending at position %d", depth, i)
			}
			if n.counts[i] <= 0 {
				debugFailf("Grapes node at depth %d has non-positive count %d for graph %d", depth, n.counts[i], id)
			}
		}
		entries += int64(len(n.graphIDs))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(ix.root, 0)
	if nodes != ix.nodes {
		debugFailf("Grapes nodes counter %d, walked %d", ix.nodes, nodes)
	}
	if entries != ix.entries {
		debugFailf("Grapes entries counter %d, walked %d", ix.entries, entries)
	}
}

// debugCheckGGSX panics if the built GGSX suffix tree violates an
// invariant. No-op in normal builds.
func debugCheckGGSX(ix *GGSX) {
	if !debugInvariants || ix.root == nil {
		return
	}
	var nodes, entries int64
	var walk func(n *ggsxNode, depth int)
	walk = func(n *ggsxNode, depth int) {
		nodes++
		for i, id := range n.graphIDs {
			if int(id) >= ix.numGraphs || id < 0 {
				debugFailf("GGSX node at depth %d lists graph %d outside [0,%d)", depth, id, ix.numGraphs)
			}
			if i > 0 && n.graphIDs[i-1] >= id {
				debugFailf("GGSX presence list at depth %d not strictly ascending at position %d", depth, i)
			}
		}
		entries += int64(len(n.graphIDs))
		for _, c := range n.children {
			walk(c, depth+1)
		}
	}
	walk(ix.root, 0)
	if nodes != ix.nodes {
		debugFailf("GGSX nodes counter %d, walked %d", ix.nodes, nodes)
	}
	if entries != ix.entries {
		debugFailf("GGSX entries counter %d, walked %d", ix.entries, entries)
	}
}

func debugFailf(format string, args ...any) {
	panic("sqdebug: index: " + fmt.Sprintf(format, args...))
}
