package index

import (
	"subgraphquery/internal/budget"
	"subgraphquery/internal/graph"
)

// Appender is implemented by indexes that can absorb one appended data
// graph without a rebuild — the incremental maintenance whose absence in
// most IFV systems the paper cites as a core limitation (§I, [39]). The
// enumeration-based indexes support it naturally: the new graph's features
// are enumerated and inserted; existing entries never change because
// posting lists are per-graph. Mining-based indexes (gIndex) do not — their
// feature selection depends on global supports.
type Appender interface {
	// InsertGraph indexes g under the id gid. gid must be larger than
	// every previously indexed id (append-only), keeping posting lists
	// sorted.
	InsertGraph(g *graph.Graph, gid int) error
}

// InsertGraph implements Appender for the Grapes trie.
func (ix *Grapes) InsertGraph(g *graph.Graph, gid int) error {
	if ix.root == nil {
		ix.root = &grapesNode{}
		ix.nodes = 1
	}
	counts := countPaths(g, ix.maxLen())
	for key, c := range counts {
		ix.insert(key, int32(gid), c)
	}
	if gid >= ix.numGraphs {
		ix.numGraphs = gid + 1
	}
	return nil
}

// InsertGraph implements Appender for the GGSX suffix tree.
func (ix *GGSX) InsertGraph(g *graph.Graph, gid int) error {
	if ix.root == nil {
		ix.root = &ggsxNode{}
		ix.nodes = 1
	}
	enumeratePaths(g, ix.maxLen(), func(labels []graph.Label) bool {
		for s := 0; s < len(labels); s++ {
			ix.insert(labels[s:], int32(gid))
		}
		return true
	})
	if gid >= ix.numGraphs {
		ix.numGraphs = gid + 1
	}
	return nil
}

// InsertGraph implements Appender for GraphGrep's hash fingerprints.
func (ix *GraphGrep) InsertGraph(g *graph.Graph, gid int) error {
	table := make(map[uint32]int32)
	enumeratePaths(g, ix.maxLen(), func(labels []graph.Label) bool {
		table[ix.bucket(labels)]++
		return true
	})
	for gid >= len(ix.tables) {
		ix.tables = append(ix.tables, map[uint32]int32{})
	}
	ix.tables[gid] = table
	return nil
}

// InsertGraph implements Appender for CT-Index fingerprints.
func (ix *CTIndex) InsertGraph(g *graph.Graph, gid int) error {
	if ix.words == 0 {
		ix.words = (ix.bits() + 63) / 64
	}
	var spent int64
	var check budget.Checkpoint
	fp, err := ix.fingerprint(g, &spent, &check, BuildOptions{})
	if err != nil {
		return err
	}
	for gid >= len(ix.fingerprints) {
		ix.fingerprints = append(ix.fingerprints, make([]uint64, ix.words))
	}
	ix.fingerprints[gid] = fp
	return nil
}
