package index

import (
	"math/rand"
	"testing"

	"subgraphquery/internal/graph"
)

func TestTreePiMinesInfrequentFeatures(t *testing.T) {
	// 10 identical path graphs plus one graph with a unique star feature:
	// with support 0.5 the star's size-3 feature must be mined away while
	// the shared path features stay.
	path := graph.MustFromEdges([]graph.Label{0, 1, 0},
		[]graph.Edge{{U: 0, V: 1}, {U: 1, V: 2}})
	star := graph.MustFromEdges([]graph.Label{2, 3, 3, 3},
		[]graph.Edge{{U: 0, V: 1}, {U: 0, V: 2}, {U: 0, V: 3}})
	graphs := []*graph.Graph{star}
	for i := 0; i < 10; i++ {
		graphs = append(graphs, path)
	}
	db := graph.NewDatabase(graphs)

	ix := &TreePiLite{SupportRatio: 0.5}
	if err := ix.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	// The star code (center 2, three leaves 3) is infrequent.
	starCode := treeCode(star, []graph.VertexID{0, 1, 2, 3}, star.Edges())
	if _, kept := ix.features[starCode]; kept {
		t.Error("infrequent star feature should be mined away")
	}
	// The shared path code is frequent.
	pathCode := treeCode(path, []graph.VertexID{0, 1, 2}, path.Edges())
	if _, kept := ix.features[pathCode]; !kept {
		t.Error("frequent path feature should be kept")
	}
	// Completeness survives mining: a star query still yields graph 0.
	got := ix.Filter(star)
	found := false
	for _, id := range got {
		if id == 0 {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("star query lost its answer after mining: %v", got)
	}
}

func TestTreePiPrecisionBelowExhaustive(t *testing.T) {
	// Mining away features can only weaken filtering: TreePi candidates
	// must be a superset of Grapes candidates restricted to tree features…
	// verified here indirectly: TreePi candidates ⊇ true answers (in
	// completeness tests) and Filter returns sorted unique ids.
	r := rand.New(rand.NewSource(601))
	db := randomDB(r, 10, 7, 2)
	ix := &TreePiLite{SupportRatio: 0.3}
	if err := ix.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 8; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(3))
		ids := ix.Filter(q)
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("ids not sorted: %v", ids)
			}
		}
		for id := range trueAnswers(db, q) {
			present := false
			for _, got := range ids {
				if got == id {
					present = true
					break
				}
			}
			if !present {
				t.Fatalf("mined index dropped true answer %d", id)
			}
		}
	}
}

func TestIsSingleVertexCode(t *testing.T) {
	g := graph.MustFromEdges([]graph.Label{5}, nil)
	code := treeCode(g, []graph.VertexID{0}, nil)
	if !isSingleVertexCode(code) {
		t.Errorf("single-vertex code %q not recognized", code)
	}
	p := graph.MustFromEdges([]graph.Label{5, 6}, []graph.Edge{{U: 0, V: 1}})
	code2 := treeCode(p, []graph.VertexID{0, 1}, p.Edges())
	if isSingleVertexCode(code2) {
		t.Errorf("edge code %q misclassified", code2)
	}
}
