// Package index implements the graph database indexes of the three IFV
// algorithms the paper compares against (§III-A):
//
//   - Grapes [10]: exhaustively enumerated labeled paths up to a maximum
//     length, stored in a trie with per-graph occurrence counts, built and
//     probed with a worker pool (the paper configures 6 threads).
//   - GGSX (GraphGrepSX) [2]: the same path features stored in a suffix
//     tree keeping per-graph presence sets.
//   - CT-Index [20]: tree and cycle features up to a maximum size, hashed
//     into fixed-width per-graph bit fingerprints.
//
// Every index implements the Index interface used by the IFV engine in
// internal/core. Index construction accepts a budget so the experiment
// harness can report out-of-time (OOT) conditions the way the paper does
// instead of hanging: the paper's Table VI and VIII mark CT-Index OOT on
// most datasets.
package index

import (
	"errors"
	"time"

	"subgraphquery/internal/budget"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/obs"
)

// Index is a graph database index: built once over D, it maps a query graph
// to the set of data graph ids that contain all the query's features — the
// candidate set C(q) of Algorithm 1.
type Index interface {
	// Name identifies the index in experiment output.
	Name() string

	// Build constructs the index over the database. It replaces any
	// previous contents and may return ErrBudget when opts limits are hit.
	Build(db *graph.Database, opts BuildOptions) error

	// Filter returns the ids of data graphs that contain every feature of
	// q, in ascending order.
	Filter(q *graph.Graph) []int

	// MemoryFootprint returns the approximate byte size of the index,
	// the paper's "Memory Cost" metric (Tables VII and IX).
	MemoryFootprint() int64
}

// BuildOptions bounds index construction.
type BuildOptions struct {
	// Deadline aborts construction when exceeded (the paper allows 24h);
	// zero means no deadline.
	Deadline time.Time

	// Cancel aborts construction cooperatively when closed
	// (context-compatible: pass ctx.Done()); Build then returns ErrBudget
	// like an exceeded Deadline. nil disables the check at no cost.
	Cancel <-chan struct{}

	// MaxFeatures aborts construction after this many enumerated feature
	// instances, a deterministic out-of-time proxy for tests. 0 = no limit.
	MaxFeatures int64

	// Workers sets the parallelism of index construction for indexes that
	// support it (Grapes). 0 selects 1.
	Workers int
}

// ErrBudget is returned by Build when a Deadline or MaxFeatures budget was
// exhausted; the harness reports the corresponding experiment cell as OOT.
var ErrBudget = errors.New("index: construction budget exhausted")

// checkpoint returns the deadline/cancellation poller a Build loop ticks
// once per enumerated feature instance, at the shared feature-mining
// stride.
func (o *BuildOptions) checkpoint() budget.Checkpoint {
	return budget.Checkpoint{Deadline: o.Deadline, Cancel: o.Cancel, Stride: budget.FeatureStride}
}

// ExactFilter is implemented by indexes that can sometimes answer a query
// outright — FG-Index's "verification-free query processing": when the
// whole query matches an indexed feature, the posting list *is* the answer
// set. exact=false degrades to ordinary candidate filtering.
type ExactFilter interface {
	FilterExact(q *graph.Graph) (ids []int, exact bool)
}

// Explainable is implemented by indexes that can report per-probe
// statistics — trie nodes visited, occurrence-list intersection sizes,
// fingerprint survivors — into an obs.Explain while filtering. Filter(q)
// must be equivalent to FilterExplain(q, nil).
type Explainable interface {
	FilterExplain(q *graph.Graph, ex *obs.Explain) []int
}

// DefaultMaxPathLength is the paper's configured maximum path feature
// length (in edges) for Grapes and GGSX: "enumerate paths of up to a
// length of 4".
const DefaultMaxPathLength = 4
