package index

import (
	"sort"
	"strconv"
	"strings"

	"subgraphquery/internal/fault"
	"subgraphquery/internal/graph"
)

// FGIndexLite is a mining-based *graph*-feature index in the spirit of
// FG-Index (Cheng, Ke, Ng and Lu [4]: "towards verification-free query
// processing on graph databases"). Every connected subgraph of up to
// MaxFeatureEdges edges is enumerated per data graph and canonicalized
// exactly (small graphs admit exact canonical forms by permutation
// minimization); frequent features keep their posting lists.
//
// The signature property of FG-Index is reproduced: when the *entire
// query* is one of the indexed features, its posting list is the exact
// answer set — no verification at all. Larger queries fall back to
// feature-intersection filtering like the other mining-based indexes.
type FGIndexLite struct {
	// MaxFeatureEdges bounds feature size; 0 selects 4 (features then have
	// at most 5 vertices, keeping exact canonicalization trivial).
	MaxFeatureEdges int
	// SupportRatio is the minimum fraction of graphs containing a kept
	// feature; 0 selects 0.05. Size-≤1 features are always kept.
	SupportRatio float64

	features  map[string][]int32
	numGraphs int
}

// Name implements Index.
func (*FGIndexLite) Name() string { return "FG-Index" }

func (ix *FGIndexLite) maxEdges() int {
	if ix.MaxFeatureEdges <= 0 {
		return 4
	}
	return ix.MaxFeatureEdges
}

func (ix *FGIndexLite) support() float64 {
	if ix.SupportRatio <= 0 {
		return 0.05
	}
	return ix.SupportRatio
}

// Build implements Index.
func (ix *FGIndexLite) Build(db *graph.Database, opts BuildOptions) error {
	ix.numGraphs = db.Len()
	postings := make(map[string][]int32)
	var features int64
	check := opts.checkpoint()
	for gid := 0; gid < db.Len(); gid++ {
		seen := make(map[string]bool)
		ok := enumerateConnectedSubgraphs(db.Graph(gid), ix.maxEdges(), func(code string) bool {
			features++
			if check.Tick() {
				return false
			}
			if opts.MaxFeatures > 0 && features > opts.MaxFeatures {
				return false
			}
			if !seen[code] {
				seen[code] = true
				postings[code] = append(postings[code], int32(gid))
			}
			return true
		})
		if !ok {
			return ErrBudget
		}
	}
	minSupport := int(ix.support() * float64(db.Len()))
	if minSupport < 1 {
		minSupport = 1
	}
	ix.features = make(map[string][]int32)
	for code, ids := range postings {
		if len(ids) >= minSupport || isSingleVertexGraphCode(code) {
			ix.features[code] = ids
		}
	}
	return nil
}

// FilterExact returns the candidate ids and whether they are already the
// exact answer set (the query matched an indexed feature verbatim).
func (ix *FGIndexLite) FilterExact(q *graph.Graph) ([]int, bool) { //sqlint:ignore ctxbudget probe cost is bounded by the built feature table, not the data graphs
	fault.Inject(fault.PointIndexProbe)
	if ix.features == nil {
		return nil, false
	}
	if q.NumEdges() <= ix.maxEdges() && q.NumVertices() <= ix.maxEdges()+1 {
		if ids, ok := ix.features[canonicalSmallGraphCode(q)]; ok {
			return toInts(append([]int32(nil), ids...)), true
		}
		// A small connected query absent from the feature map can still
		// have answers if it was mined away (support below threshold);
		// fall through to filtering.
	}
	needed := make(map[string]bool)
	enumerateConnectedSubgraphs(q, ix.maxEdges(), func(code string) bool {
		needed[code] = true
		return true
	})
	cand := allGraphIDs(ix.numGraphs)
	for code := range needed {
		ids, ok := ix.features[code]
		if !ok {
			if isSingleVertexGraphCode(code) {
				return nil, false
			}
			continue
		}
		cand = intersectSorted(cand, ids)
		if len(cand) == 0 {
			return nil, false
		}
	}
	return toInts(cand), false
}

// Filter implements Index.
func (ix *FGIndexLite) Filter(q *graph.Graph) []int { //sqlint:ignore ctxbudget probe cost is bounded by the built feature table, not the data graphs
	ids, _ := ix.FilterExact(q)
	return ids
}

// MemoryFootprint implements Index.
func (ix *FGIndexLite) MemoryFootprint() int64 {
	var b int64
	for code, ids := range ix.features {
		b += int64(len(code)) + 48 + int64(len(ids))*4
	}
	return b
}

func isSingleVertexGraphCode(code string) bool {
	return strings.HasPrefix(code, "G1|")
}

// enumerateConnectedSubgraphs visits the canonical code of every connected
// subgraph (edge subset spanning a connected vertex set) of g with at most
// maxE edges, with growth-order duplicates. Growth alternates between
// adding an edge to a new vertex and closing an edge between two existing
// vertices.
func enumerateConnectedSubgraphs(g *graph.Graph, maxE int, visit func(code string) bool) bool {
	inSub := make([]bool, g.NumVertices())
	verts := make([]graph.VertexID, 0, maxE+1)
	var edges []graph.Edge
	edgeSeen := make(map[[2]graph.VertexID]bool)

	var grow func() bool
	grow = func() bool {
		if !visit(subgraphCode(g, verts, edges)) {
			return false
		}
		if len(edges) == maxE {
			return true
		}
		for _, v := range verts {
			for _, w := range g.Neighbors(v) {
				a, b := v, w
				if a > b {
					a, b = b, a
				}
				if edgeSeen[[2]graph.VertexID{a, b}] {
					continue
				}
				edgeSeen[[2]graph.VertexID{a, b}] = true
				newVertex := !inSub[w]
				if newVertex {
					inSub[w] = true
					verts = append(verts, w)
				}
				edges = append(edges, graph.Edge{U: v, V: w})
				ok := grow()
				edges = edges[:len(edges)-1]
				if newVertex {
					inSub[w] = false
					verts = verts[:len(verts)-1]
				}
				delete(edgeSeen, [2]graph.VertexID{a, b})
				if !ok {
					return false
				}
			}
		}
		return true
	}
	for v := 0; v < g.NumVertices(); v++ {
		vv := graph.VertexID(v)
		inSub[vv] = true
		verts = append(verts[:0], vv)
		edges = edges[:0]
		ok := grow()
		inSub[vv] = false
		if !ok {
			return false
		}
	}
	return true
}

// subgraphCode canonicalizes the feature given by (verts, edges) of g.
func subgraphCode(g *graph.Graph, verts []graph.VertexID, edges []graph.Edge) string {
	n := len(verts)
	labels := make([]graph.Label, n)
	pos := make(map[graph.VertexID]int, n)
	for i, v := range verts {
		pos[v] = i
		labels[i] = g.Label(v)
	}
	var adj uint64 // bitmap over (i,j) pairs, i<j, n<=8
	for _, e := range edges {
		i, j := pos[e.U], pos[e.V]
		if i > j {
			i, j = j, i
		}
		adj |= 1 << uint(i*8+j)
	}
	return canonicalCode(labels, adj, n)
}

// canonicalSmallGraphCode canonicalizes a whole small graph.
func canonicalSmallGraphCode(g *graph.Graph) string {
	n := g.NumVertices()
	labels := make([]graph.Label, n)
	for i := range labels {
		labels[i] = g.Label(graph.VertexID(i))
	}
	var adj uint64
	for _, e := range g.Edges() {
		i, j := int(e.U), int(e.V)
		if i > j {
			i, j = j, i
		}
		adj |= 1 << uint(i*8+j)
	}
	return canonicalCode(labels, adj, n)
}

// canonicalCode computes the exact canonical string of a labeled graph
// with at most 8 vertices by minimizing over all vertex permutations.
func canonicalCode(labels []graph.Label, adj uint64, n int) string {
	if n > 8 {
		// Callers bound feature size well below this; degrade gracefully
		// with a non-canonical but deterministic code.
		return encodeCode(labels, adj, n)
	}
	// Vertices are first grouped by label (labels in canonical order are
	// then fixed); only permutations within equal-label groups can affect
	// the code, so the search space is the product of group factorials
	// instead of n!.
	order := make([]int, n) // original indices sorted by label
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return labels[order[a]] < labels[order[b]] })
	sortedLabels := make([]graph.Label, n)
	for newPos, old := range order {
		sortedLabels[newPos] = labels[old]
	}

	perm := append([]int(nil), order...) // perm[newPos] = original index
	var bestAdj uint64
	haveBest := false
	evaluate := func() {
		var padj uint64
		inv := make([]int, n) // original -> new position
		for newPos, old := range perm {
			inv[old] = newPos
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if adj&(1<<uint(i*8+j)) != 0 {
					a, b := inv[i], inv[j]
					if a > b {
						a, b = b, a
					}
					padj |= 1 << uint(a*8+b)
				}
			}
		}
		if !haveBest || padj < bestAdj {
			bestAdj = padj
			haveBest = true
		}
	}
	var permute func(k int)
	permute = func(k int) {
		if k == n {
			evaluate()
			return
		}
		for i := k; i < n; i++ {
			if sortedLabels[i] != sortedLabels[k] {
				break // only swap within the same label group
			}
			perm[k], perm[i] = perm[i], perm[k]
			permute(k + 1)
			perm[k], perm[i] = perm[i], perm[k]
		}
	}
	permute(0)
	return encodeCode(sortedLabels, bestAdj, n)
}

func encodeCode(labels []graph.Label, adj uint64, n int) string {
	var b strings.Builder
	b.WriteString("G")
	b.WriteString(strconv.Itoa(n))
	b.WriteString("|")
	parts := make([]string, n)
	for i, l := range labels {
		parts[i] = strconv.FormatUint(uint64(l), 36)
	}
	if n > 8 {
		sort.Strings(parts) // deterministic fallback only
	}
	b.WriteString(strings.Join(parts, ","))
	b.WriteString("|")
	b.WriteString(strconv.FormatUint(adj, 36))
	return b.String()
}
