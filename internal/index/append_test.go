package index

import (
	"math/rand"
	"testing"
)

// appenders lists the indexes supporting incremental insertion.
func appenders() map[string]Index {
	return map[string]Index{
		"Grapes":    &Grapes{},
		"GGSX":      &GGSX{},
		"GraphGrep": &GraphGrep{},
		"CT-Index":  &CTIndex{},
	}
}

// TestInsertGraphMatchesRebuild: appending graphs one by one must yield the
// same filtering behaviour as building over the full database.
func TestInsertGraphMatchesRebuild(t *testing.T) {
	r := rand.New(rand.NewSource(131))
	full := randomDB(r, 12, 8, 2)
	half := 6

	for name, incremental := range appenders() {
		// Build over the first half, then append the rest.
		firstHalf := randomDB(r, 0, 8, 2)
		for i := 0; i < half; i++ {
			firstHalf.Append(full.Graph(i))
		}
		if err := incremental.Build(firstHalf, BuildOptions{}); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		app, ok := incremental.(Appender)
		if !ok {
			t.Fatalf("%s should implement Appender", name)
		}
		for i := half; i < full.Len(); i++ {
			if err := app.InsertGraph(full.Graph(i), i); err != nil {
				t.Fatalf("%s insert %d: %v", name, i, err)
			}
		}

		fresh := appenders()[name]
		if err := fresh.Build(full, BuildOptions{}); err != nil {
			t.Fatalf("%s rebuild: %v", name, err)
		}

		for k := 0; k < 10; k++ {
			q := walkQuery(r, full.Graph(r.Intn(full.Len())), 1+r.Intn(4))
			a := incremental.Filter(q)
			b := fresh.Filter(q)
			if len(a) != len(b) {
				t.Fatalf("%s: incremental filter %v != rebuilt %v", name, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s: incremental filter %v != rebuilt %v", name, a, b)
				}
			}
		}
	}
}

// TestInsertGraphFromEmpty: appending into a never-built index works.
func TestInsertGraphFromEmpty(t *testing.T) {
	r := rand.New(rand.NewSource(137))
	db := randomDB(r, 5, 7, 2)
	for name, ix := range appenders() {
		app := ix.(Appender)
		for i := 0; i < db.Len(); i++ {
			if err := app.InsertGraph(db.Graph(i), i); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
		}
		q := walkQuery(r, db.Graph(0), 2)
		ids := ix.Filter(q)
		found := false
		for _, id := range ids {
			if id == 0 {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: source graph missing from filter output %v", name, ids)
		}
	}
}
