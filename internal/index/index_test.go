package index

import (
	"math/rand"
	"testing"
	"time"

	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

// indexes returns a fresh instance of every index under test.
func indexes() map[string]Index {
	return map[string]Index{
		"Grapes":          &Grapes{},
		"Grapes-parallel": &Grapes{},
		"GGSX":            &GGSX{},
		"CT-Index":        &CTIndex{},
		"GraphGrep":       &GraphGrep{},
		"gIndex":          &GIndexLite{},
		"TreePi":          &TreePiLite{},
		"FG-Index":        &FGIndexLite{},
	}
}

func buildOpts(name string) BuildOptions {
	if name == "Grapes-parallel" {
		return BuildOptions{Workers: 6}
	}
	return BuildOptions{}
}

// randomDB builds a small random database and a query drawn from one of its
// graphs (so the answer set is non-empty).
func randomDB(r *rand.Rand, graphs, size, labels int) *graph.Database {
	gs := make([]*graph.Graph, graphs)
	for i := range gs {
		gs[i] = randomConnected(r, 2+r.Intn(size), r.Intn(2*size), labels)
	}
	return graph.NewDatabase(gs)
}

func randomConnected(r *rand.Rand, n, extra, labels int) *graph.Graph {
	lab := make([]graph.Label, n)
	for i := range lab {
		lab[i] = graph.Label(r.Intn(labels))
	}
	seen := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	add := func(u, v graph.VertexID) {
		if u == v {
			return
		}
		if u > v {
			u, v = v, u
		}
		if !seen[[2]graph.VertexID{u, v}] {
			seen[[2]graph.VertexID{u, v}] = true
			edges = append(edges, graph.Edge{U: u, V: v})
		}
	}
	for v := 1; v < n; v++ {
		add(graph.VertexID(r.Intn(v)), graph.VertexID(v))
	}
	for i := 0; i < extra; i++ {
		add(graph.VertexID(r.Intn(n)), graph.VertexID(r.Intn(n)))
	}
	return graph.MustFromEdges(lab, edges)
}

// walkQuery extracts a connected query from g by random walk.
func walkQuery(r *rand.Rand, g *graph.Graph, qEdges int) *graph.Graph {
	start := graph.VertexID(r.Intn(g.NumVertices()))
	ids := map[graph.VertexID]graph.VertexID{start: 0}
	labels := []graph.Label{g.Label(start)}
	seen := map[[2]graph.VertexID]bool{}
	var edges []graph.Edge
	cur := start
	for steps := 0; len(edges) < qEdges && steps < 20*qEdges+40; steps++ {
		nbrs := g.Neighbors(cur)
		if len(nbrs) == 0 {
			break
		}
		next := nbrs[r.Intn(len(nbrs))]
		a, b := cur, next
		if a > b {
			a, b = b, a
		}
		if !seen[[2]graph.VertexID{a, b}] {
			seen[[2]graph.VertexID{a, b}] = true
			if _, ok := ids[next]; !ok {
				ids[next] = graph.VertexID(len(labels))
				labels = append(labels, g.Label(next))
			}
			edges = append(edges, graph.Edge{U: ids[cur], V: ids[next]})
		}
		cur = next
	}
	if len(edges) == 0 {
		return graph.MustFromEdges([]graph.Label{g.Label(start)}, nil)
	}
	return graph.MustFromEdges(labels, edges)
}

// trueAnswers computes the exact answer set by subgraph isomorphism tests.
func trueAnswers(db *graph.Database, q *graph.Graph) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < db.Len(); i++ {
		if (&matching.VF2{}).FindFirst(q, db.Graph(i), matching.Options{}).Found() {
			out[i] = true
		}
	}
	return out
}

// TestIndexCompleteness is the core IFV correctness property: the candidate
// set returned by every index must be a superset of the true answer set.
func TestIndexCompleteness(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	for trial := 0; trial < 12; trial++ {
		db := randomDB(r, 6+r.Intn(6), 8, 1+r.Intn(4))
		for name, ix := range indexes() {
			if err := ix.Build(db, buildOpts(name)); err != nil {
				t.Fatalf("%s build: %v", name, err)
			}
			for k := 0; k < 4; k++ {
				src := db.Graph(r.Intn(db.Len()))
				q := walkQuery(r, src, 1+r.Intn(5))
				want := trueAnswers(db, q)
				got := map[int]bool{}
				for _, id := range ix.Filter(q) {
					got[id] = true
				}
				for id := range want {
					if !got[id] {
						t.Fatalf("trial %d: %s filtered out true answer graph %d for query %v",
							trial, name, id, q)
					}
				}
			}
		}
	}
}

func TestFilterReturnsSortedUniqueIDs(t *testing.T) {
	r := rand.New(rand.NewSource(23))
	db := randomDB(r, 10, 8, 2)
	q := walkQuery(r, db.Graph(0), 2)
	for name, ix := range indexes() {
		if err := ix.Build(db, buildOpts(name)); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		ids := ix.Filter(q)
		for i := 1; i < len(ids); i++ {
			if ids[i] <= ids[i-1] {
				t.Fatalf("%s: ids not sorted/unique: %v", name, ids)
			}
		}
		for _, id := range ids {
			if id < 0 || id >= db.Len() {
				t.Fatalf("%s: id %d out of range", name, id)
			}
		}
	}
}

// TestGrapesNoWeakerThanGGSX: Grapes filters on occurrence counts, GGSX on
// presence only, so with the same path length Grapes candidates ⊆ GGSX
// candidates.
func TestGrapesNoWeakerThanGGSX(t *testing.T) {
	r := rand.New(rand.NewSource(31))
	db := randomDB(r, 14, 9, 2)
	var grapes Grapes
	var ggsx GGSX
	if err := grapes.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := ggsx.Build(db, BuildOptions{}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 20; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(5))
		gSet := map[int]bool{}
		for _, id := range ggsx.Filter(q) {
			gSet[id] = true
		}
		for _, id := range grapes.Filter(q) {
			if !gSet[id] {
				t.Fatalf("Grapes admitted %d that GGSX rejected (query %v)", id, q)
			}
		}
	}
}

func TestMissingLabelFiltersEverything(t *testing.T) {
	r := rand.New(rand.NewSource(37))
	db := randomDB(r, 5, 6, 2) // labels 0..1 only
	q := graph.MustFromEdges([]graph.Label{9, 9}, []graph.Edge{{U: 0, V: 1}})
	for name, ix := range indexes() {
		if err := ix.Build(db, buildOpts(name)); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		if got := ix.Filter(q); len(got) != 0 {
			t.Errorf("%s: query with absent label produced candidates %v", name, got)
		}
	}
}

func TestBuildBudgetMaxFeatures(t *testing.T) {
	r := rand.New(rand.NewSource(41))
	db := randomDB(r, 8, 10, 2)
	for name, ix := range indexes() {
		opts := buildOpts(name)
		opts.MaxFeatures = 10
		if err := ix.Build(db, opts); err != ErrBudget {
			t.Errorf("%s: Build with tiny MaxFeatures = %v, want ErrBudget", name, err)
		}
	}
}

func TestBuildBudgetDeadline(t *testing.T) {
	r := rand.New(rand.NewSource(43))
	// Dense-ish database so enumeration takes more than 0 time.
	gs := make([]*graph.Graph, 20)
	for i := range gs {
		gs[i] = randomConnected(r, 40, 200, 2)
	}
	db := graph.NewDatabase(gs)
	for name, ix := range indexes() {
		opts := buildOpts(name)
		opts.Deadline = time.Now().Add(-time.Second) // already expired
		if err := ix.Build(db, opts); err != ErrBudget {
			t.Errorf("%s: Build with expired deadline = %v, want ErrBudget", name, err)
		}
	}
}

func TestMemoryFootprintPositive(t *testing.T) {
	r := rand.New(rand.NewSource(47))
	db := randomDB(r, 6, 6, 2)
	for name, ix := range indexes() {
		if err := ix.Build(db, buildOpts(name)); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		if ix.MemoryFootprint() <= 0 {
			t.Errorf("%s: MemoryFootprint = %d, want > 0", name, ix.MemoryFootprint())
		}
	}
}

func TestGrapesParallelMatchesSequential(t *testing.T) {
	r := rand.New(rand.NewSource(53))
	db := randomDB(r, 16, 8, 3)
	var seq, par Grapes
	if err := seq.Build(db, BuildOptions{Workers: 1}); err != nil {
		t.Fatal(err)
	}
	if err := par.Build(db, BuildOptions{Workers: 6}); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 15; k++ {
		q := walkQuery(r, db.Graph(r.Intn(db.Len())), 1+r.Intn(4))
		a, b := seq.Filter(q), par.Filter(q)
		if len(a) != len(b) {
			t.Fatalf("parallel build differs: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("parallel build differs: %v vs %v", a, b)
			}
		}
	}
}

// TestFilterBeforeBuild: probing an unbuilt index returns no candidates
// instead of panicking.
func TestFilterBeforeBuild(t *testing.T) {
	q := graph.MustFromEdges([]graph.Label{0, 1}, []graph.Edge{{U: 0, V: 1}})
	for name, ix := range indexes() {
		if got := ix.Filter(q); len(got) != 0 {
			t.Errorf("%s: Filter before Build returned %v", name, got)
		}
	}
}

func TestSingleVertexQuery(t *testing.T) {
	r := rand.New(rand.NewSource(59))
	db := randomDB(r, 8, 6, 3)
	q := graph.MustFromEdges([]graph.Label{1}, nil)
	want := trueAnswers(db, q)
	for name, ix := range indexes() {
		if err := ix.Build(db, buildOpts(name)); err != nil {
			t.Fatalf("%s build: %v", name, err)
		}
		got := ix.Filter(q)
		for id := range want {
			found := false
			for _, g := range got {
				if g == id {
					found = true
					break
				}
			}
			if !found {
				t.Errorf("%s: dropped answer %d for single-vertex query", name, id)
			}
		}
	}
}
