// Benchmarks regenerating each table and figure of the paper's evaluation
// at reduced scale: one Benchmark per experiment, with sub-benchmarks per
// engine where the experiment compares engines. The cmd/sqbench tool runs
// the same experiments at configurable scale with full rendered output;
// these benches provide `go test -bench` visibility into the identical
// code paths (plus allocation counts via -benchmem).
package subgraphquery_test

import (
	"sync"
	"testing"
	"time"

	sq "subgraphquery"
	"subgraphquery/internal/bench"
	"subgraphquery/internal/core"
	"subgraphquery/internal/gen"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

// fixtures are generated once and shared; generation cost is kept out of
// benchmark loops.
var (
	fixOnce sync.Once
	fixAIDS *graph.Database // AIDS-like molecule database
	fixPPI  *graph.Database // PPI-like large networks
	fixSyn  *graph.Database // default synthetic configuration, scaled
	fixQ8S  []*graph.Graph  // sparse queries on fixAIDS
	fixQ8D  []*graph.Graph  // dense queries on fixAIDS
	fixPPIQ []*graph.Graph  // sparse queries on fixPPI
	fixSynQ []*graph.Graph  // sparse queries on fixSyn
)

func fixtures(b *testing.B) {
	b.Helper()
	fixOnce.Do(func() {
		var err error
		fixAIDS, err = gen.Real(gen.AIDS, 0.01, 1) // 400 molecules
		if err != nil {
			panic(err)
		}
		fixPPI, err = gen.Real(gen.PPI, 0.08, 1) // 4 networks, ~300 vertices
		if err != nil {
			panic(err)
		}
		fixSyn, err = gen.Synthetic(gen.SyntheticConfig{
			NumGraphs: 100, NumVertices: 60, NumLabels: 20, Degree: 8, Seed: 1,
		})
		if err != nil {
			panic(err)
		}
		fixQ8S = mustQueries(fixAIDS, 8, gen.QueryRandomWalk)
		fixQ8D = mustQueries(fixAIDS, 8, gen.QueryBFS)
		fixPPIQ = mustQueries(fixPPI, 16, gen.QueryRandomWalk)
		fixSynQ = mustQueries(fixSyn, 8, gen.QueryRandomWalk)
	})
}

func mustQueries(db *graph.Database, edges int, m gen.QueryMethod) []*graph.Graph {
	qs, err := gen.QuerySet(db, gen.QuerySetConfig{Count: 5, Edges: edges, Method: m, Seed: 3})
	if err != nil {
		panic(err)
	}
	return qs
}

// builtEngine constructs and builds an engine on db, failing the benchmark
// on error.
func builtEngine(b *testing.B, name string, db *graph.Database) core.Engine {
	b.Helper()
	e, err := bench.NewEngine(name)
	if err != nil {
		b.Fatal(err)
	}
	if err := e.Build(db, core.BuildOptions{Workers: 6}); err != nil {
		b.Fatalf("%s build: %v", name, err)
	}
	return e
}

// runWorkload executes every query and returns aggregate answers (to keep
// the compiler from eliding work).
func runWorkload(e core.Engine, queries []*graph.Graph) int {
	total := 0
	for _, q := range queries {
		res := e.Query(q, core.QueryOptions{Workers: 1})
		total += len(res.Answers)
	}
	return total
}

// --- Table V: query set statistics -------------------------------------

func BenchmarkTableV_QuerySetGeneration(b *testing.B) {
	fixtures(b)
	for _, mcase := range []struct {
		name string
		m    gen.QueryMethod
	}{{"Sparse", gen.QueryRandomWalk}, {"Dense", gen.QueryBFS}} {
		b.Run(mcase.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				qs, err := gen.QuerySet(fixAIDS, gen.QuerySetConfig{
					Count: 10, Edges: 8, Method: mcase.m, Seed: int64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				_ = gen.ComputeQuerySetStats(qs)
			}
		})
	}
}

// --- Table VI / Table VIII: indexing time ------------------------------

func benchmarkIndexBuild(b *testing.B, db *graph.Database) {
	for _, name := range []string{"Grapes", "GGSX", "CT-Index"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := bench.NewEngine(name)
				if err != nil {
					b.Fatal(err)
				}
				err = e.Build(db, core.BuildOptions{
					Workers:  6,
					Deadline: time.Now().Add(60 * time.Second),
				})
				if err != nil {
					b.Skipf("%s: OOT at this scale: %v", name, err)
				}
			}
		})
	}
}

func BenchmarkTableVI_IndexingTimeReal(b *testing.B) {
	fixtures(b)
	benchmarkIndexBuild(b, fixAIDS)
}

func BenchmarkTableVIII_IndexingTimeSynthetic(b *testing.B) {
	fixtures(b)
	benchmarkIndexBuild(b, fixSyn)
}

// --- Figure 2 (real) / Figure 8 (synthetic): filtering precision --------
// The computed quantity is the candidate set; precision follows from it.

func benchmarkFiltering(b *testing.B, db *graph.Database, queries []*graph.Graph, engines []string) {
	for _, name := range engines {
		b.Run(name, func(b *testing.B) {
			e := builtEngine(b, name, db)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if runWorkload(e, queries) == 0 {
					b.Fatal("no answers; queries are drawn from the database")
				}
			}
		})
	}
}

func BenchmarkFig2_FilteringPrecisionReal(b *testing.B) {
	fixtures(b)
	benchmarkFiltering(b, fixAIDS, fixQ8S, []string{"Grapes", "GGSX", "CT-Index", "CFL", "GraphQL", "CFQL", "vcGrapes", "vcGGSX"})
}

func BenchmarkFig8_FilteringPrecisionSynthetic(b *testing.B) {
	fixtures(b)
	benchmarkFiltering(b, fixSyn, fixSynQ, bench.SyntheticQueryEngines)
}

// --- Figure 3 (real) / Figure 9 (synthetic): filtering time -------------
// Isolates the Filter phase: candidate-set construction per data graph.

func BenchmarkFig3_FilteringTimeReal(b *testing.B) {
	fixtures(b)
	benchFilterPhase(b, fixAIDS, fixQ8S)
}

func BenchmarkFig9_FilteringTimeSynthetic(b *testing.B) {
	fixtures(b)
	benchFilterPhase(b, fixSyn, fixSynQ)
}

func benchFilterPhase(b *testing.B, db *graph.Database, queries []*graph.Graph) {
	filters := map[string]func(q, g *graph.Graph) bool{
		"CFL": func(q, g *graph.Graph) bool {
			return !matching.CFLFilter(q, g, matching.FilterOptions{}).AnyEmpty()
		},
		"GraphQL": func(q, g *graph.Graph) bool {
			return !matching.GraphQLFilter(q, g, matching.FilterOptions{}).AnyEmpty()
		},
	}
	for name, filter := range filters {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				pass := 0
				for _, q := range queries {
					for gi := 0; gi < db.Len(); gi++ {
						if filter(q, db.Graph(gi)) {
							pass++
						}
					}
				}
				if pass == 0 {
					b.Fatal("filter rejected everything")
				}
			}
		})
	}
}

// --- Figure 4: verification time / Figure 5: per-SI-test time -----------
// The verification gap: VF2 (IFV) versus the preprocessing-enumeration
// matchers (vcFV), on the verification-bound PPI-like dataset.

func BenchmarkFig4_VerificationTimeReal(b *testing.B) {
	fixtures(b)
	for _, name := range []string{"Scan-VF2", "GraphQL", "CFQL"} {
		b.Run(name, func(b *testing.B) {
			e := builtEngine(b, name, fixPPI)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if runWorkload(e, fixPPIQ) == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

func BenchmarkFig5_PerSITestTime(b *testing.B) {
	fixtures(b)
	// The paper's per-SI-test gap shows on *hard* tests: graphs that do
	// not contain the query (or where the first match is deep). Run every
	// query against every PPI graph — most pairs are non-matches that VF2
	// must refute exhaustively while CFL's filtering rejects them early.
	opts := sq.MatchOptions{StepBudget: 50_000_000}
	matchers := map[string]sq.Matcher{
		"VF2":  sq.NewVF2Matcher(),
		"CFQL": sq.NewCFQLMatcher(),
	}
	for name, m := range matchers {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tests, found := 0, 0
				for _, q := range fixPPIQ {
					for gi := 0; gi < fixPPI.Len(); gi++ {
						if m.FindFirst(q, fixPPI.Graph(gi), opts).Found() {
							found++
						}
						tests++
					}
				}
				if found == 0 {
					b.Fatal("queries are drawn from the database; some must match")
				}
				b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(tests)/1e3, "µs/SItest")
			}
		})
	}
}

// --- Figure 6: candidate counts ------------------------------------------

func BenchmarkFig6_CandidateCounts(b *testing.B) {
	fixtures(b)
	for _, name := range []string{"Grapes", "CFQL"} {
		b.Run(name, func(b *testing.B) {
			e := builtEngine(b, name, fixAIDS)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				cands := 0
				for _, q := range fixQ8D {
					cands += e.Query(q, core.QueryOptions{Workers: 1}).Candidates
				}
				if cands == 0 {
					b.Fatal("no candidates")
				}
			}
		})
	}
}

// --- Figure 7: query time -------------------------------------------------

func BenchmarkFig7_QueryTime(b *testing.B) {
	fixtures(b)
	for _, name := range []string{"CT-Index", "Grapes", "GGSX", "CFQL", "vcGrapes", "vcGGSX"} {
		b.Run(name, func(b *testing.B) {
			e := builtEngine(b, name, fixAIDS)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				runWorkload(e, fixQ8S)
				runWorkload(e, fixQ8D)
			}
		})
	}
}

// --- Table VII / Table IX: memory cost ------------------------------------

func BenchmarkTableVII_MemoryCostReal(b *testing.B) {
	fixtures(b)
	benchMemory(b, fixAIDS, fixQ8S)
}

func BenchmarkTableIX_MemoryCostSynthetic(b *testing.B) {
	fixtures(b)
	benchMemory(b, fixSyn, fixSynQ)
}

// --- Ablations (DESIGN.md): design-choice benchmarks beyond the paper ----

// BenchmarkAblation_CFLBottomUp isolates CFL's bottom-up refinement pass:
// filter cost with and without it over the same workload.
func BenchmarkAblation_CFLBottomUp(b *testing.B) {
	fixtures(b)
	variants := map[string]func(q, g *graph.Graph) *matching.Candidates{
		"Full": func(q, g *graph.Graph) *matching.Candidates {
			return matching.CFLFilter(q, g, matching.FilterOptions{})
		},
		"TopDownOnly": func(q, g *graph.Graph) *matching.Candidates {
			return matching.CFLFilterTopDownOnly(q, g, matching.FilterOptions{})
		},
	}
	for name, filter := range variants {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, q := range fixQ8S {
					for gi := 0; gi < fixAIDS.Len(); gi++ {
						total += filter(q, fixAIDS.Graph(gi)).TotalSize()
					}
				}
				if total == 0 {
					b.Fatal("filters produced no candidates")
				}
			}
		})
	}
}

// BenchmarkAblation_GraphQLRefinement isolates GraphQL's pseudo-isomorphism
// pruning: profile-only versus refined.
func BenchmarkAblation_GraphQLRefinement(b *testing.B) {
	fixtures(b)
	for _, rounds := range []struct {
		name string
		n    int
	}{{"ProfileOnly", -1}, {"Refined", 3}} {
		b.Run(rounds.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, q := range fixQ8S {
					for gi := 0; gi < fixAIDS.Len(); gi++ {
						total += matching.GraphQLFilter(q, fixAIDS.Graph(gi), matching.FilterOptions{Rounds: rounds.n}).TotalSize()
					}
				}
				if total == 0 {
					b.Fatal("filters produced no candidates")
				}
			}
		})
	}
}

// BenchmarkAblation_ParallelVcFV compares the paper's single-threaded CFQL
// with the worker-pool extension.
func BenchmarkAblation_ParallelVcFV(b *testing.B) {
	fixtures(b)
	engines := map[string]core.Engine{
		"Sequential": core.NewCFQL(),
		"Parallel6":  core.NewParallelCFQL(6),
	}
	for name, e := range engines {
		if err := e.Build(fixAIDS, core.BuildOptions{}); err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				total := 0
				for _, q := range fixQ8S {
					total += len(e.Query(q, core.QueryOptions{}).Answers)
				}
				if total == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

// BenchmarkAblation_ResultCache measures the GraphCache-style wrapper on a
// repetitive workload (each query issued twice): the second pass verifies
// only the previous answer set.
func BenchmarkAblation_ResultCache(b *testing.B) {
	fixtures(b)
	engines := map[string]func() core.Engine{
		"Plain":  core.NewCFQL,
		"Cached": func() core.Engine { return core.NewCached(core.NewCFQL(), 32) },
	}
	for name, mk := range engines {
		b.Run(name, func(b *testing.B) {
			e := mk()
			if err := e.Build(fixAIDS, core.BuildOptions{}); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				total := 0
				for pass := 0; pass < 2; pass++ {
					for _, q := range fixQ8S {
						total += len(e.Query(q, core.QueryOptions{}).Answers)
					}
				}
				if total == 0 {
					b.Fatal("no answers")
				}
			}
		})
	}
}

func benchMemory(b *testing.B, db *graph.Database, queries []*graph.Graph) {
	for _, name := range []string{"Grapes", "GGSX", "CFQL"} {
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := builtEngine(b, name, db)
				var aux int64
				for _, q := range queries {
					res := e.Query(q, core.QueryOptions{Workers: 1})
					if res.AuxMemory > aux {
						aux = res.AuxMemory
					}
				}
				total := e.IndexMemory() + aux
				if total <= 0 {
					b.Fatalf("%s reported no memory", name)
				}
				b.ReportMetric(float64(total)/(1<<20), "MB")
			}
		})
	}
}
