#!/bin/sh
# benchdiff.sh — the bench-regression gate.
#
# Default mode runs the small-scale real-dataset study into a scratch
# directory and compares its per-engine, per-query-set p50 latency against
# the committed baselines (BENCH_*.json at the repo root), failing on any
# cell slower than the threshold. The run parameters MUST match the ones
# the baselines were recorded with (`make bench`); sqbench diff rejects
# mismatched configs rather than comparing different workloads.
#
#   scripts/benchdiff.sh            # run the study, then gate
#   scripts/benchdiff.sh --check    # gate only: compare an existing
#                                   # -cur directory (default bench-out)
#                                   # against the baselines, no study run
#
# Environment:
#   BENCH_BASE          baseline directory (default: repo root)
#   BENCH_CUR           current-report directory (default: bench-out)
#   BENCH_THRESHOLD     relative p50 slowdown that fails the gate (default 0.15)
#   BENCH_REQUIRE_SETS  query sets every current report must contain
#                       (default: the dense induced track Q4I..Q32I; empty
#                       disables the presence check)
set -eu

cd "$(dirname "$0")/.."

BASE="${BENCH_BASE:-.}"
CUR="${BENCH_CUR:-bench-out}"
THRESHOLD="${BENCH_THRESHOLD:-0.15}"
REQUIRE_SETS="${BENCH_REQUIRE_SETS-Q4I,Q8I,Q16I,Q32I}"

check_only=0
if [ "${1:-}" = "--check" ]; then
    check_only=1
fi

if [ "$check_only" -eq 0 ]; then
    mkdir -p "$CUR"
    echo "== sqbench real -json-dir $CUR (matching the committed baseline config)"
    go run ./cmd/sqbench real -scale 0.005 -queries 3 \
        -index-budget 30s -query-budget 2s -json-dir "$CUR" >/dev/null
fi

if ! ls "$CUR"/BENCH_*.json >/dev/null 2>&1; then
    echo "benchdiff: no BENCH_*.json in $CUR (run without --check first)" >&2
    exit 2
fi

echo "== sqbench diff -base $BASE -cur $CUR -threshold $THRESHOLD -require-sets '$REQUIRE_SETS'"
go run ./cmd/sqbench diff -base "$BASE" -cur "$CUR" -threshold "$THRESHOLD" \
    -require-sets "$REQUIRE_SETS"
