#!/bin/sh
# check.sh — fast pre-commit gate: vet everything, then race-test the
# packages this tree churns most (the observability layer, the engines
# and the HTTP server). The full suite is `go test ./...` (slow: the
# bench smoke tests build every index).
set -eu

cd "$(dirname "$0")/.."

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go test -race -short internal/obs internal/core cmd/sqserver"
go test -race -short ./internal/obs ./internal/core ./cmd/sqserver

echo "ok"
