#!/bin/sh
# check.sh — pre-commit gate: formatting, vet, build, the project-specific
# static analyzers (cmd/sqlint), and the race-enabled short test suite over
# every package. The full suite is `go test ./...` (slow: the bench smoke
# tests build every index); the sqdebug invariant tests run via
# `make test-sqdebug`.
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt -l"
unformatted=$(gofmt -l . 2>/dev/null)
if [ -n "$unformatted" ]; then
    echo "gofmt: files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

echo "== go vet ./..."
go vet ./...

echo "== go build ./..."
go build ./...

echo "== go run ./cmd/sqlint -baseline cmd/sqlint/baseline.txt ./..."
# Fails on any finding not listed in the baseline; stale baseline entries
# (fixed findings whose line was not deleted) warn on stderr.
go run ./cmd/sqlint -baseline cmd/sqlint/baseline.txt ./...

echo "== go test -race -short ./..."
go test -race -short ./...

echo "== telemetry storm (tail-sampler retention under chaos, race)"
go test -race -count=1 -run 'Storm' ./internal/telemetry
go test -tags sqchaos -race -count=1 -run 'TestChaosTelemetryRetainsAnomalies' ./cmd/sqserver

echo "== live-inspection storm + stuck-query watchdog (inflight registry, race)"
go test -race -count=1 -run 'Watchdog' ./internal/inflight ./cmd/sqserver
go test -tags sqchaos -race -count=1 -run 'TestInflightStormUnderChaos' ./cmd/sqserver

echo "== scatter-gather tier: shard-kill chaos storm (race)"
make test-cluster

echo "ok"
