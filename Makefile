GO ?= go

.PHONY: build check test bench bench-real bench-synthetic bench-json clean

build:
	$(GO) build ./...

# Fast pre-commit gate: vet + race tests on the hot packages.
check:
	sh scripts/check.sh

# Full suite (slow: bench smoke tests build every index).
test:
	$(GO) test ./...

# Default bench run: small-scale real + synthetic studies, landing the
# machine-readable reports (BENCH_<dataset>.json, BENCH_synthetic.json,
# schema subgraphquery/bench/v1) at the repo root so the perf trajectory
# is tracked in-tree.
bench: bench-real bench-synthetic

bench-real:
	$(GO) run ./cmd/sqbench real -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir .

bench-synthetic:
	$(GO) run ./cmd/sqbench synthetic -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir .

# Back-compat alias for the old out-of-tree report location.
bench-json:
	mkdir -p bench-out
	$(GO) run ./cmd/sqbench real -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir bench-out

clean:
	rm -rf bench-out
