GO ?= go

.PHONY: build check lint test test-sqdebug test-sqchaos test-cluster fuzz bench bench-real bench-synthetic bench-json bench-dense benchcmp benchcmp-check clean

build:
	$(GO) build ./...

# Pre-commit gate: gofmt + vet + build + sqlint + race-short tests.
check:
	sh scripts/check.sh

# Project-specific static analyzers (hotpath, hotalloc, locks, ctxbudget,
# errwrap, recoverhygiene, atomichygiene, goroterm, chansend, atomicalign)
# with the checked-in baseline and per-analyzer timing on stderr.
lint:
	$(GO) run ./cmd/sqlint -v -baseline cmd/sqlint/baseline.txt ./...

# Full suite (slow: bench smoke tests build every index).
test:
	$(GO) test ./...

# Short suite with the sqdebug runtime invariant assertions compiled in
# (CSR shape, candidate-set mirrors, embedding validity, trie postings).
test-sqdebug:
	$(GO) test -tags sqdebug -short ./...

# Chaos suite with the sqchaos fault-injection substrate compiled in:
# panics, latency, allocation spikes and spurious aborts fired into the
# filter/order/enumerate/index-probe hot paths, with the engines and the
# server asserted to survive every fault (structured errors, no crash, no
# goroutine or scratch-arena leak). Runs under the race detector — worker
# pools unwinding through injected panics is exactly where races hide.
test-sqchaos:
	$(GO) test -tags sqchaos -race ./internal/core ./cmd/sqserver

# Scatter-gather tier suite: the cluster package's unit tests plus the
# chaos storms — per-shard drop injection at the transport boundary, and
# the server-level shard-kill storm (one of four shards killed and
# revived mid-500-query-storm; every response well-formed, lost
# partitions named, hedged losers cancelled, registry drained). Race
# detector on: the coordinator's fan-out/hedge/cancel paths are where
# races hide.
test-cluster:
	$(GO) test -race -count=1 ./internal/cluster
	$(GO) test -tags sqchaos -race -count=1 -run 'TestCluster' ./internal/cluster
	$(GO) test -tags sqchaos -race -count=1 -run 'TestChaosClusterShardKillStorm' ./cmd/sqserver

# Ten-second fuzz smoke over the graph text-format reader, seeded from
# internal/graph/testdata/fuzz.
fuzz:
	$(GO) test -fuzz=FuzzReadDatabase -fuzztime=10s -run '^$$' ./internal/graph

# Default bench run: small-scale real + synthetic studies, landing the
# machine-readable reports (BENCH_<dataset>.json, BENCH_synthetic.json,
# schema subgraphquery/bench/v1) at the repo root so the perf trajectory
# is tracked in-tree.
bench: bench-real bench-synthetic

bench-real:
	$(GO) run ./cmd/sqbench real -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir .

bench-synthetic:
	$(GO) run ./cmd/sqbench synthetic -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir .

# Back-compat alias for the old out-of-tree report location.
bench-json:
	mkdir -p bench-out
	$(GO) run ./cmd/sqbench real -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir bench-out

# Dense-query bench smoke: rerun the real study into bench-out and
# self-diff it, verifying the dense induced track (Q4I..Q32I) is present
# in every report and the whole gate plumbing (schema, pairing, diff)
# holds. Hardware-independent, so CI runs it on every push.
bench-dense: bench-json
	BENCH_BASE=bench-out BENCH_CUR=bench-out sh scripts/benchdiff.sh --check

# Bench-regression gate: rerun the small-scale real study into bench-out
# and fail if any per-engine, per-query-set p50 latency regressed more
# than 15% against the committed BENCH_*.json baselines at the repo root.
benchcmp:
	sh scripts/benchdiff.sh

# Gate only: compare an existing bench-out against the baselines without
# rerunning the study (used by CI after a fresh `make bench-json`).
benchcmp-check:
	sh scripts/benchdiff.sh --check

clean:
	rm -rf bench-out
