GO ?= go

.PHONY: build check test bench-json clean

build:
	$(GO) build ./...

# Fast pre-commit gate: vet + race tests on the hot packages.
check:
	sh scripts/check.sh

# Full suite (slow: bench smoke tests build every index).
test:
	$(GO) test ./...

# Small-scale bench run emitting BENCH_<dataset>.json into ./bench-out.
bench-json:
	mkdir -p bench-out
	$(GO) run ./cmd/sqbench real -scale 0.005 -queries 3 \
		-index-budget 30s -query-budget 2s -json-dir bench-out

clean:
	rm -rf bench-out
