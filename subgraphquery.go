// Package subgraphquery is an index-free subgraph query processing library,
// a from-scratch Go implementation of the system studied in:
//
//	Shixuan Sun and Qiong Luo. "Scaling Up Subgraph Query Processing with
//	Efficient Subgraph Matching." ICDE 2019.
//
// A subgraph query finds all data graphs in a graph database that contain a
// given query graph. The library provides the paper's three algorithm
// categories behind one Engine interface:
//
//   - IFV engines (Grapes, GGSX, CT-Index): classic
//     indexing-filtering-verification — an index over path / tree / cycle
//     features filters the database, VF2 verifies the survivors.
//   - vcFV engines (CFL, GraphQL, CFQL): the paper's contribution — no
//     index at all; the preprocessing phase of a modern subgraph matching
//     algorithm filters each data graph by vertex connectivity, and its
//     enumeration phase verifies, stopping at the first embedding. CFQL
//     (CFL's filter + GraphQL's ordering) is the recommended default.
//   - IvcFV engines (vcGrapes, vcGGSX): both filtering levels combined.
//
// It also exposes full subgraph matching (enumerate all embeddings), the
// dataset and query-workload generators used in the paper's evaluation, and
// a benchmark harness regenerating every table and figure (see DESIGN.md
// and EXPERIMENTS.md).
//
// Quick start:
//
//	db := subgraphquery.NewDatabase(graphs)
//	engine := subgraphquery.NewCFQLEngine()
//	engine.Build(db, subgraphquery.BuildOptions{})
//	result := engine.Query(q, subgraphquery.QueryOptions{})
//	fmt.Println(result.Answers) // ids of graphs containing q
package subgraphquery

import (
	"io"

	"subgraphquery/internal/core"
	"subgraphquery/internal/graph"
	"subgraphquery/internal/inflight"
	"subgraphquery/internal/obs"
	"subgraphquery/internal/telemetry"
)

// Re-exported graph substrate types.
type (
	// Graph is an immutable vertex-labeled undirected graph in CSR form.
	Graph = graph.Graph
	// Label is a vertex label.
	Label = graph.Label
	// VertexID identifies a vertex within one graph.
	VertexID = graph.VertexID
	// Edge is an undirected edge.
	Edge = graph.Edge
	// Builder incrementally constructs a Graph.
	Builder = graph.Builder
	// Database is an in-memory collection of data graphs.
	Database = graph.Database
	// DatabaseStats summarizes a database (Table IV-style statistics).
	DatabaseStats = graph.Stats
)

// Re-exported engine types.
type (
	// Engine answers subgraph queries over one database.
	Engine = core.Engine
	// BuildOptions bounds index construction (ignored by vcFV engines).
	BuildOptions = core.BuildOptions
	// QueryOptions bounds query processing.
	QueryOptions = core.QueryOptions
	// Result reports a query's answers and per-phase metrics.
	Result = core.Result
	// QueryError is the structured form of a failure inside query
	// processing: a panic recovered at an engine's resilience boundary or a
	// graph skipped for exceeding QueryOptions.MemoryBudget. Found on
	// Result.Err and Result.GraphErrors.
	QueryError = core.QueryError
)

// QueryError kinds, for matching on QueryError.Kind.
const (
	// ErrKindPanic marks a recovered panic.
	ErrKindPanic = core.KindPanic
	// ErrKindBudget marks a graph skipped for exceeding the memory budget.
	ErrKindBudget = core.KindBudget
	// ErrKindShard marks a shard partition lost by a scatter-gather
	// coordinator; Result.Degraded is set and QueryError.Shard names the
	// lost shard.
	ErrKindShard = core.KindShard
)

// Re-exported observability types (see internal/obs): set
// QueryOptions.Observer to stream phase spans, per-candidate verification
// events and cache outcomes while a query runs.
type (
	// Observer receives streaming query telemetry.
	Observer = obs.Observer
	// Trace records one query's telemetry; it implements Observer and a
	// nil *Trace is a free no-op.
	Trace = obs.Trace
	// TraceSnapshot is the JSON-marshalable view of a Trace.
	TraceSnapshot = obs.TraceSnapshot
	// Explain collects a structured EXPLAIN report from the filtering and
	// index internals; set QueryOptions.Explain to enable. A nil *Explain
	// is a free no-op.
	Explain = obs.Explain
	// ExplainSnapshot is the JSON-marshalable view of an Explain.
	ExplainSnapshot = obs.ExplainSnapshot
	// Fingerprint is a canonical, label-aware 64-bit hash of a query
	// graph's structure, invariant under vertex renumbering — the
	// aggregation key of all workload telemetry. Engines compute it at
	// Query entry and report it on Result.Fingerprint.
	Fingerprint = telemetry.Fingerprint
	// InflightRegistry tracks live queries for inspection and remote
	// cancellation; set QueryOptions.Inflight to enable.
	InflightRegistry = inflight.Registry
	// InflightHandle is one live query's registry entry with atomic
	// progress counters. A nil *InflightHandle is a free no-op.
	InflightHandle = inflight.Handle
	// InflightSnapshot is the JSON-marshalable view of a live query.
	InflightSnapshot = inflight.HandleSnapshot
)

// ComputeFingerprint returns the canonical fingerprint of q. Engines call
// this implicitly; it is exported for callers that want to pre-compute the
// hash (e.g. to attribute load-shed queries) and pass it via
// QueryOptions.Fingerprint.
func ComputeFingerprint(q *Graph) Fingerprint { return telemetry.Compute(q) }

// NewTrace returns an empty per-query trace.
func NewTrace() *Trace { return obs.NewTrace() }

// NewExplain returns an empty per-query EXPLAIN report.
func NewExplain() *Explain { return obs.NewExplain() }

// NewInflightRegistry returns a live-query registry with the given slot
// capacity (0 selects the default).
func NewInflightRegistry(slots int) *InflightRegistry { return inflight.NewRegistry(slots) }

// NewBuilder returns a graph builder with capacity hints.
func NewBuilder(vertices, edges int) *Builder { return graph.NewBuilder(vertices, edges) }

// FromEdges builds a graph from a label array and an edge list.
func FromEdges(labels []Label, edges []Edge) (*Graph, error) {
	return graph.FromEdges(labels, edges)
}

// NewDatabase returns a database over the given data graphs.
func NewDatabase(graphs []*Graph) *Database { return graph.NewDatabase(graphs) }

// ReadDatabase parses a database in the text format ("t/v/e" records).
func ReadDatabase(r io.Reader) (*Database, error) { return graph.ReadDatabase(r) }

// WriteDatabase serializes a database in the text format.
func WriteDatabase(w io.Writer, d *Database) error { return graph.WriteDatabase(w, d) }

// ReadGraph parses a single graph in the text format.
func ReadGraph(r io.Reader) (*Graph, error) { return graph.ReadGraph(r) }

// WriteGraph serializes a single graph in the text format.
func WriteGraph(w io.Writer, id int, g *Graph) error { return graph.WriteGraph(w, id, g) }

// NewCFQLEngine returns the paper's recommended index-free engine: CFL's
// filtering with GraphQL's join-based verification (vcFV category).
func NewCFQLEngine() Engine { return core.NewCFQL() }

// NewCFLEngine returns the vcFV engine built from CFL alone.
func NewCFLEngine() Engine { return core.NewCFL() }

// NewGraphQLEngine returns the vcFV engine built from GraphQL alone.
func NewGraphQLEngine() Engine { return core.NewGraphQL() }

// NewGrapesEngine returns the Grapes IFV engine (path trie index + VF2).
func NewGrapesEngine() Engine { return core.NewGrapes() }

// NewGGSXEngine returns the GGSX IFV engine (suffix tree index + VF2).
func NewGGSXEngine() Engine { return core.NewGGSX() }

// NewCTIndexEngine returns the CT-Index IFV engine (tree/cycle fingerprints
// + order-optimized VF2).
func NewCTIndexEngine() Engine { return core.NewCTIndex() }

// NewVcGrapesEngine returns the vcGrapes IvcFV engine (Grapes index +
// CFQL).
func NewVcGrapesEngine() Engine { return core.NewVcGrapes() }

// NewVcGGSXEngine returns the vcGGSX IvcFV engine (GGSX index + CFQL).
func NewVcGGSXEngine() Engine { return core.NewVcGGSX() }

// NewScanEngine returns the naive baseline: VF2 against every data graph,
// no filtering.
func NewScanEngine() Engine { return core.NewScan() }

// NewTurboIsoEngine returns the TurboIso-based query engine (extension):
// candidate-region matching with first-match semantics per data graph.
func NewTurboIsoEngine() Engine { return core.NewTurboIso() }

// NewParallelCFQLEngine returns the worker-pool CFQL extension: the vcFV
// loop over data graphs runs on the given number of workers (0 selects 6).
func NewParallelCFQLEngine(workers int) Engine { return core.NewParallelCFQL(workers) }

// NewGraphGrepEngine returns the GraphGrep IFV engine (extension): hashed
// path fingerprints with occurrence counts.
func NewGraphGrepEngine() Engine { return core.NewGraphGrep() }

// NewGIndexEngine returns a mining-based IFV engine in the spirit of
// gIndex (extension): frequent, discriminative path features.
func NewGIndexEngine() Engine { return core.NewGIndex() }

// NewTreePiEngine returns a mining-based IFV engine in the spirit of
// TreePi/SwiftIndex (extension): frequent subtree features.
func NewTreePiEngine() Engine { return core.NewTreePi() }

// NewFGIndexEngine returns a mining-based IFV engine in the spirit of
// FG-Index (extension): frequent connected-subgraph features with exact
// canonical codes; queries matching a feature verbatim are answered
// verification-free.
func NewFGIndexEngine() Engine { return core.NewFGIndex() }

// NewCachedEngine wraps an engine with a subgraph-query result cache in
// the spirit of GraphCache [33,34] (extension): answer sets of past
// queries serve as candidate pools for new queries that contain them, and
// confirm answers for new queries they contain. capacity 0 selects 64
// entries.
func NewCachedEngine(inner Engine, capacity int) Engine {
	return core.NewCached(inner, capacity)
}

// Updatable is implemented by engines that can incorporate an appended
// data graph without a full index rebuild: every vcFV engine and the
// enumeration-based IFV/IvcFV engines. Assert it on an Engine to use
// incremental maintenance:
//
//	if u, ok := engine.(subgraphquery.Updatable); ok {
//		u.AppendGraph(g)
//	}
type Updatable = core.Updatable
