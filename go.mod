module subgraphquery

go 1.22
