package subgraphquery

import (
	"subgraphquery/internal/graph"
	"subgraphquery/internal/matching"
)

// Subgraph matching API (Definition II.3): find all subgraphs of a data
// graph isomorphic to the query, not just test containment. This is the
// machinery underneath every engine's verification step, exposed for
// direct use.

// MatchOptions bounds a matching enumeration.
type MatchOptions = matching.Options

// MatchResult reports an enumeration's outcome.
type MatchResult = matching.Result

// Matcher enumerates subgraph isomorphisms from a query to a data graph.
type Matcher interface {
	// Run finds embeddings under the given bounds.
	Run(q, g *Graph, opts MatchOptions) MatchResult
	// FindFirst stops at the first embedding (the subgraph isomorphism
	// test).
	FindFirst(q, g *Graph, opts MatchOptions) MatchResult
}

type matcherFunc struct {
	run func(q, g *graph.Graph, opts matching.Options) matching.Result
}

func (m matcherFunc) Run(q, g *Graph, opts MatchOptions) MatchResult {
	return m.run(q, g, opts)
}

func (m matcherFunc) FindFirst(q, g *Graph, opts MatchOptions) MatchResult {
	opts.Limit = 1
	return m.run(q, g, opts)
}

// NewVF2Matcher returns the VF2 direct-enumeration matcher [6].
func NewVF2Matcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return (&matching.VF2{}).Run(q, g, o)
	}}
}

// NewUllmannMatcher returns the Ullmann direct-enumeration matcher [32].
func NewUllmannMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.Ullmann{}.Run(q, g, o)
	}}
}

// NewGraphQLMatcher returns the GraphQL preprocessing-enumeration matcher
// [14].
func NewGraphQLMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.GraphQL{}.Run(q, g, o)
	}}
}

// NewCFLMatcher returns the CFL preprocessing-enumeration matcher [1].
func NewCFLMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.CFL{}.Run(q, g, o)
	}}
}

// NewTurboIsoMatcher returns the TurboIso preprocessing-enumeration
// matcher [11]: candidate-region exploration per start vertex.
func NewTurboIsoMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.TurboIso{}.Run(q, g, o)
	}}
}

// NewQuickSIMatcher returns the QuickSI direct-enumeration matcher [28]:
// infrequent-first QI-sequence ordering.
func NewQuickSIMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.QuickSI{}.Run(q, g, o)
	}}
}

// NewSPathMatcher returns the SPath direct-enumeration matcher [41]:
// distance-level neighborhood signature filtering.
func NewSPathMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.SPath{}.Run(q, g, o)
	}}
}

// NewCFQLMatcher returns the hybrid matcher: CFL's filtering, GraphQL's
// ordering and enumeration.
func NewCFQLMatcher() Matcher {
	return matcherFunc{func(q, g *graph.Graph, o matching.Options) matching.Result {
		return matching.CFQL{}.Run(q, g, o)
	}}
}

// CountEmbeddings returns the number of subgraph isomorphisms from q to g
// using the CFQL matcher with no bounds. For graphs where the count may be
// astronomically large, use a Matcher with MatchOptions limits instead.
func CountEmbeddings(q, g *Graph) uint64 {
	return matching.CFQL{}.Run(q, g, matching.Options{}).Embeddings
}

// IsSubgraph reports whether q is subgraph-isomorphic to g
// (Definition II.1).
func IsSubgraph(q, g *Graph) bool {
	return matching.CFQL{}.FindFirst(q, g, matching.Options{}).Found()
}
