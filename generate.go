package subgraphquery

import (
	"subgraphquery/internal/gen"
)

// Dataset and query-workload generation, re-exported from internal/gen:
// the GraphGen-style synthetic generator and the random-walk / BFS query
// extractors the paper's evaluation uses.

// SyntheticConfig parameterizes the synthetic database generator.
type SyntheticConfig = gen.SyntheticConfig

// QuerySetConfig parameterizes a query workload.
type QuerySetConfig = gen.QuerySetConfig

// QueryMethod selects the query generation strategy.
type QueryMethod = gen.QueryMethod

// QuerySetStats summarizes a query set (Table V-style statistics).
type QuerySetStats = gen.QuerySetStats

// RealDataset names one of the simulated real-world datasets.
type RealDataset = gen.RealDataset

// Query generation methods.
const (
	// QueryRandomWalk extracts sparse queries (the paper's Q_iS sets).
	QueryRandomWalk = gen.QueryRandomWalk
	// QueryBFS extracts dense queries (the paper's Q_iD sets).
	QueryBFS = gen.QueryBFS
)

// The four simulated real-world datasets (statistics match Table IV).
const (
	AIDS = gen.AIDS
	PDBS = gen.PDBS
	PCM  = gen.PCM
	PPI  = gen.PPI
)

// GenerateSynthetic builds a synthetic database with the GraphGen-style
// parameters |D|, |V(G)|, |Σ| and d(G).
func GenerateSynthetic(cfg SyntheticConfig) (*Database, error) {
	return gen.Synthetic(cfg)
}

// GenerateReal builds a simulated instance of a real-world dataset at the
// given scale in (0, 1].
func GenerateReal(name RealDataset, scale float64, seed int64) (*Database, error) {
	return gen.Real(name, scale, seed)
}

// GenerateQuerySet extracts a query workload from the database; every query
// is connected and contained in at least one data graph.
func GenerateQuerySet(db *Database, cfg QuerySetConfig) ([]*Graph, error) {
	return gen.QuerySet(db, cfg)
}

// ComputeQuerySetStats summarizes a query set.
func ComputeQuerySetStats(queries []*Graph) QuerySetStats {
	return gen.ComputeQuerySetStats(queries)
}
